package verify

import (
	"strings"
	"testing"

	"tlrchol/internal/runtime"
)

func errorsContaining(fs Findings, substr string) int {
	n := 0
	for _, f := range fs.Errors() {
		if strings.Contains(f.Msg, substr) {
			n++
		}
	}
	return n
}

func TestGraphCleanDTD(t *testing.T) {
	in := runtime.NewInserter()
	in.Insert("w", 0, nil, runtime.W("x"))
	in.Insert("r1", 0, nil, runtime.R("x"))
	in.Insert("r2", 0, nil, runtime.R("x"))
	in.Insert("w2", 0, nil, runtime.W("x"))
	fs := CheckGraph(in.Graph())
	if err := fs.Err(); err != nil {
		t.Fatalf("clean DTD graph rejected: %v", err)
	}
	if len(fs) != 0 {
		t.Fatalf("unexpected warnings: %v", fs)
	}
}

func TestGraphInjectedCycle(t *testing.T) {
	g := runtime.NewGraph()
	a := g.NewTask("a", 0, nil)
	b := g.NewTask("b", 0, nil)
	c := g.NewTask("c", 0, nil)
	g.AddDep(a, b)
	g.AddDep(b, c)
	g.AddDep(c, a) // the injected fault
	fs := CheckGraph(g)
	if errorsContaining(fs, "cycle") == 0 {
		t.Fatalf("cycle not detected: %v", fs)
	}
}

func TestGraphSelfDependency(t *testing.T) {
	g := runtime.NewGraph()
	a := g.NewTask("a", 0, nil)
	g.AddDep(a, a)
	fs := CheckGraph(g)
	if errorsContaining(fs, "depends on itself") == 0 {
		t.Fatalf("self-dependency not detected: %v", fs)
	}
}

func TestGraphDroppedRAWEdge(t *testing.T) {
	// A hand-wired producer/consumer graph that "forgot" the RAW edge:
	// the accesses say consume reads what produce writes, the edges say
	// nothing — the verifier must catch the hole.
	g := runtime.NewGraph()
	w := g.NewTask("produce", 0, nil)
	w.DeclareAccesses(runtime.W("x"))
	r := g.NewTask("consume", 0, nil)
	r.DeclareAccesses(runtime.R("x"))
	fs := CheckGraph(g)
	if errorsContaining(fs, "missing RAW") == 0 {
		t.Fatalf("dropped RAW edge not detected: %v", fs)
	}

	// Adding the edge back heals the graph.
	g2 := runtime.NewGraph()
	w2 := g2.NewTask("produce", 0, nil)
	w2.DeclareAccesses(runtime.W("x"))
	r2 := g2.NewTask("consume", 0, nil)
	r2.DeclareAccesses(runtime.R("x"))
	g2.AddDep(w2, r2)
	if err := CheckGraph(g2).Err(); err != nil {
		t.Fatalf("healed graph still rejected: %v", err)
	}
}

func TestGraphDroppedWARAndWAW(t *testing.T) {
	// w0 -> r (RAW present) but the later writer w1 is ordered against
	// neither: both the WAR (r -> w1) and WAW (w0 -> w1) paths are
	// missing.
	g := runtime.NewGraph()
	w0 := g.NewTask("w0", 0, nil)
	w0.DeclareAccesses(runtime.W("x"))
	r := g.NewTask("r", 0, nil)
	r.DeclareAccesses(runtime.R("x"))
	g.AddDep(w0, r)
	w1 := g.NewTask("w1", 0, nil)
	w1.DeclareAccesses(runtime.W("x"))
	fs := CheckGraph(g)
	if errorsContaining(fs, "missing WAW") == 0 {
		t.Fatalf("dropped WAW not detected: %v", fs)
	}
	if errorsContaining(fs, "missing WAR") == 0 {
		t.Fatalf("dropped WAR not detected: %v", fs)
	}
}

func TestGraphTransitiveOrderingAccepted(t *testing.T) {
	// The hazard check demands a path, not a direct edge: w0 -> r -> w1
	// orders the WAW w0 -> w1 transitively.
	g := runtime.NewGraph()
	w0 := g.NewTask("w0", 0, nil)
	w0.DeclareAccesses(runtime.W("x"))
	r := g.NewTask("r", 0, nil)
	r.DeclareAccesses(runtime.R("x"))
	w1 := g.NewTask("w1", 0, nil)
	w1.DeclareAccesses(runtime.W("x"))
	g.AddDep(w0, r)
	g.AddDep(r, w1)
	if err := CheckGraph(g).Err(); err != nil {
		t.Fatalf("transitively ordered graph rejected: %v", err)
	}
}

func TestGraphDuplicateEdgeWarning(t *testing.T) {
	g := runtime.NewGraph()
	a := g.NewTask("a", 0, nil)
	b := g.NewTask("b", 0, nil)
	g.AddDep(a, b)
	g.AddDep(a, b)
	fs := CheckGraph(g)
	if err := fs.Err(); err != nil {
		t.Fatalf("duplicate edge must not be fatal: %v", err)
	}
	found := false
	for _, f := range fs {
		if f.Severity == Warning && strings.Contains(f.Msg, "duplicate edge") {
			found = true
		}
	}
	if !found {
		t.Fatalf("duplicate edge not reported: %v", fs)
	}
}

func TestGraphIsolatedTaskWarning(t *testing.T) {
	g := runtime.NewGraph()
	a := g.NewTask("a", 0, nil)
	b := g.NewTask("b", 0, nil)
	g.NewTask("orphan", 0, nil)
	g.AddDep(a, b)
	fs := CheckGraph(g)
	if err := fs.Err(); err != nil {
		t.Fatalf("isolated task must not be fatal: %v", err)
	}
	found := false
	for _, f := range fs {
		if f.Severity == Warning && strings.Contains(f.Msg, "isolated") {
			found = true
		}
	}
	if !found {
		t.Fatalf("isolated task not reported: %v", fs)
	}
}

func TestGraphEdgelessGraphNotFlagged(t *testing.T) {
	// A pure fan-out graph (tile-by-tile compression) has no edges and
	// must not be drowned in isolated-task warnings.
	g := runtime.NewGraph()
	for i := 0; i < 5; i++ {
		g.NewTask("compress", 0, nil)
	}
	if fs := CheckGraph(g); len(fs) != 0 {
		t.Fatalf("edgeless graph flagged: %v", fs)
	}
}

// Package trim implements the dynamic DAG trimming of Section VI: a
// pre-factorization analysis of the compressed matrix (Algorithm 1 of
// the paper, reproduced line by line) that identifies the null tiles
// and predicts fill-in, so only tasks touching non-zero or fill-in
// tiles are handed to the runtime system.
//
// Two implementations of the Structure interface exist: Analysis (the
// sparse result of Algorithm 1) and Full (the untrimmed dense DAG used
// by the Lorapo baseline, represented implicitly so it costs no
// memory). Both drive the shared-memory runtime and the distributed
// simulator identically, which is exactly the separation the paper's
// DSL achieves: the execution space of each task class is a pluggable
// description.
package trim

import "time"

// Structure describes the execution space of the tile Cholesky task
// classes: which TRSM/SYRK/GEMM task instances exist for a given matrix
// structure. Indices follow the paper's convention: panel k, tile (m,n)
// with m > n.
type Structure interface {
	// NT returns the number of tile rows/columns.
	NT() int
	// NbTrsm returns how many TRSM tasks panel k spawns; TrsmAt(k,i)
	// returns the row index m of the i-th one (ascending in m).
	NbTrsm(k int) int
	TrsmAt(k, i int) int
	// NbSyrk returns how many SYRK updates diagonal tile m receives;
	// SyrkAt(m,i) returns the panel index k of the i-th one (ascending).
	NbSyrk(m int) int
	SyrkAt(m, i int) int
	// NbGemm returns how many GEMM updates tile (m,n) receives;
	// GemmAt(m,n,i) returns the panel index k of the i-th one (ascending).
	NbGemm(m, n int) int
	GemmAt(m, n, i int) int
	// NonZero reports whether tile (m,n), m > n, is structurally non-zero
	// in the factor (initially non-zero or filled in).
	NonZero(m, n int) bool
}

// Analysis is the hicma_parsec_analysis_t of Algorithm 1: per-panel
// TRSM lists, per-diagonal SYRK lists and per-tile GEMM lists over the
// non-zero structure, with fill-in folded in.
type Analysis struct {
	nt     int
	trsm   [][]int32 // trsm[k] = sorted m with tile (m,k) structurally non-zero
	syrk   [][]int32 // syrk[m] = sorted k contributing SYRK to diagonal m
	gemm   [][]int32 // gemm[idx(m,n)] = sorted k contributing GEMM to (m,n); nil for remote tiles
	nbGemm []int32   // counts for all tiles, local or not (paper line 20)
	final  []bool    // final non-zero structure, idx(m,n)
	// Overhead metering for Fig 6 (right).
	AnalysisTime  time.Duration
	AnalysisBytes int
}

// idx linearizes the strictly-lower triangle: tile (m,n), m > n.
func (a *Analysis) idx(m, n int) int { return n*a.nt + m }

// LocalFunc reports whether tile (m,n) resides on the calling process.
// The distributed version of Algorithm 1 (paper, end of Section VI)
// only allocates GEMM lists for local tiles, limiting the per-process
// memory needed to analyze the sparsity pattern.
type LocalFunc func(m, n int) bool

// AllLocal is the shared-memory LocalFunc: every tile is local.
func AllLocal(m, n int) bool { return true }

// Analyze runs Algorithm 1 on the initial rank array. rank[m][n] (m > n)
// holds the rank of tile (m,n) after compression; zero marks a null
// tile. The returned Analysis describes the trimmed DAG. local selects
// the tiles whose GEMM lists materialize (AllLocal for shared memory).
func Analyze(rank RankArray, local LocalFunc) *Analysis {
	start := time.Now()
	nt := rank.NT()
	a := &Analysis{
		nt:     nt,
		trsm:   make([][]int32, nt),
		syrk:   make([][]int32, nt),
		gemm:   make([][]int32, nt*nt),
		nbGemm: make([]int32, nt*nt),
		final:  make([]bool, nt*nt),
	}
	// Working copy of the rank structure: rk[n*nt+m] > 0 means tile (m,n)
	// is (now) non-zero. Mirrors the paper's 1D 'rank' array.
	rk := make([]uint8, nt*nt)
	for m := 1; m < nt; m++ {
		for n := 0; n < m; n++ {
			if rank.Rank(m, n) > 0 {
				rk[n*nt+m] = 1
			}
		}
	}
	for k := 0; k < nt-1; k++ { // paper line 2
		for m := k + 1; m < nt; m++ { // lines 4–10
			if rk[k*nt+m] > 0 {
				a.trsm[k] = append(a.trsm[k], int32(m)) // lines 6–7
				a.syrk[m] = append(a.syrk[m], int32(k)) // lines 8–10
			}
		}
		lst := a.trsm[k]
		for i := 1; i < len(lst); i++ { // lines 11–20
			for j := 0; j < i; j++ {
				m := int(lst[i]) // line 13
				n := int(lst[j]) // line 14
				rk[n*nt+m] = 1   // line 15: fill-in
				if local(m, n) { // lines 16–19
					a.gemm[a.idx(m, n)] = append(a.gemm[a.idx(m, n)], int32(k))
				}
				a.nbGemm[a.idx(m, n)]++ // line 20
			}
		}
	}
	for m := 1; m < nt; m++ {
		for n := 0; n < m; n++ {
			a.final[a.idx(m, n)] = rk[n*nt+m] > 0
		}
	}
	a.AnalysisTime = time.Since(start)
	a.AnalysisBytes = a.footprint()
	return a
}

func (a *Analysis) footprint() int {
	b := a.nt * a.nt // rank working array (1 byte/tile), freed after analysis
	for _, l := range a.trsm {
		b += 4 * len(l)
	}
	for _, l := range a.syrk {
		b += 4 * len(l)
	}
	for _, l := range a.gemm {
		b += 4 * len(l)
	}
	b += 4*len(a.nbGemm) + len(a.final)
	return b
}

// NT implements Structure.
func (a *Analysis) NT() int { return a.nt }

// NbTrsm implements Structure.
func (a *Analysis) NbTrsm(k int) int { return len(a.trsm[k]) }

// TrsmAt implements Structure.
func (a *Analysis) TrsmAt(k, i int) int { return int(a.trsm[k][i]) }

// NbSyrk implements Structure.
func (a *Analysis) NbSyrk(m int) int { return len(a.syrk[m]) }

// SyrkAt implements Structure.
func (a *Analysis) SyrkAt(m, i int) int { return int(a.syrk[m][i]) }

// NbGemm implements Structure. For remote tiles (not selected by the
// LocalFunc) only the count is available; GemmAt panics there.
func (a *Analysis) NbGemm(m, n int) int { return int(a.nbGemm[a.idx(m, n)]) }

// GemmAt implements Structure.
func (a *Analysis) GemmAt(m, n, i int) int { return int(a.gemm[a.idx(m, n)][i]) }

// NonZero implements Structure.
func (a *Analysis) NonZero(m, n int) bool { return a.final[a.idx(m, n)] }

// TaskCounts tallies the task instances of the trimmed DAG, the
// quantity Fig 5 plots and Fig 6 attributes the savings to.
func TaskCounts(s Structure) (potrf, trsm, syrk, gemm int) {
	nt := s.NT()
	potrf = nt
	for k := 0; k < nt; k++ {
		trsm += s.NbTrsm(k)
		syrk += s.NbSyrk(k)
	}
	for m := 1; m < nt; m++ {
		for n := 0; n < m; n++ {
			gemm += s.NbGemm(m, n)
		}
	}
	return
}

// FinalDensity returns the ratio of structurally non-zero off-diagonal
// tiles after factorization (fill-in included).
func FinalDensity(s Structure) float64 {
	nt := s.NT()
	if nt < 2 {
		return 0
	}
	var nz, total int
	for m := 1; m < nt; m++ {
		for n := 0; n < m; n++ {
			total++
			if s.NonZero(m, n) {
				nz++
			}
		}
	}
	return float64(nz) / float64(total)
}

// RankArray exposes the initial (post-compression) rank structure to
// the analysis.
type RankArray interface {
	NT() int
	// Rank returns the rank of tile (m,n), m > n; 0 for null tiles.
	Rank(m, n int) int
}

// Ranks is a plain 2D implementation of RankArray (lower triangle).
type Ranks struct {
	N int
	R [][]int // R[m][n], n < m
}

// NT implements RankArray.
func (r Ranks) NT() int { return r.N }

// Rank implements RankArray.
func (r Ranks) Rank(m, n int) int { return r.R[m][n] }

// Full is the untrimmed execution space: every tile is assumed
// non-zero, reproducing the dense Cholesky DAG the runtime sees without
// trimming (the Lorapo baseline of the paper). It is implicit, so even
// huge NT cost nothing to represent.
type Full struct{ Nt int }

// NT implements Structure.
func (f Full) NT() int { return f.Nt }

// NbTrsm implements Structure.
func (f Full) NbTrsm(k int) int { return f.Nt - k - 1 }

// TrsmAt implements Structure.
func (f Full) TrsmAt(k, i int) int { return k + 1 + i }

// NbSyrk implements Structure.
func (f Full) NbSyrk(m int) int { return m }

// SyrkAt implements Structure.
func (f Full) SyrkAt(m, i int) int { return i }

// NbGemm implements Structure.
func (f Full) NbGemm(m, n int) int { return n }

// GemmAt implements Structure.
func (f Full) GemmAt(m, n, i int) int { return i }

// NonZero implements Structure.
func (f Full) NonZero(m, n int) bool { return true }

package trim

import (
	"math/rand"
	"testing"
)

// denseRanks builds a RankArray where every off-diagonal tile has rank r.
func denseRanks(nt, r int) Ranks {
	rk := make([][]int, nt)
	for m := range rk {
		rk[m] = make([]int, m)
		for n := range rk[m] {
			rk[m][n] = r
		}
	}
	return Ranks{N: nt, R: rk}
}

func TestFullStructureCounts(t *testing.T) {
	nt := 6
	f := Full{Nt: nt}
	potrf, trsm, syrk, gemm := TaskCounts(f)
	if potrf != nt {
		t.Fatalf("potrf=%d", potrf)
	}
	if trsm != nt*(nt-1)/2 {
		t.Fatalf("trsm=%d want %d", trsm, nt*(nt-1)/2)
	}
	if syrk != nt*(nt-1)/2 {
		t.Fatalf("syrk=%d", syrk)
	}
	// GEMM count of dense tile Cholesky: sum over (m>n) of n = NT(NT-1)(NT-2)/6.
	want := nt * (nt - 1) * (nt - 2) / 6
	if gemm != want {
		t.Fatalf("gemm=%d want %d", gemm, want)
	}
	if FinalDensity(f) != 1 {
		t.Fatalf("full structure density must be 1")
	}
}

func TestAnalyzeDenseEqualsFull(t *testing.T) {
	nt := 7
	a := Analyze(denseRanks(nt, 5), AllLocal)
	f := Full{Nt: nt}
	ap, at, as, ag := TaskCounts(a)
	fp, ft, fs, fg := TaskCounts(f)
	if ap != fp || at != ft || as != fs || ag != fg {
		t.Fatalf("dense analysis (%d,%d,%d,%d) != full (%d,%d,%d,%d)",
			ap, at, as, ag, fp, ft, fs, fg)
	}
	// Element-wise equality of the execution spaces.
	for k := 0; k < nt; k++ {
		for i := 0; i < f.NbTrsm(k); i++ {
			if a.TrsmAt(k, i) != f.TrsmAt(k, i) {
				t.Fatalf("trsm space differs at k=%d i=%d", k, i)
			}
		}
	}
	for m := 1; m < nt; m++ {
		for n := 0; n < m; n++ {
			for i := 0; i < f.NbGemm(m, n); i++ {
				if a.GemmAt(m, n, i) != f.GemmAt(m, n, i) {
					t.Fatalf("gemm space differs at (%d,%d) i=%d", m, n, i)
				}
			}
		}
	}
}

func TestAnalyzeAllZeroOffDiagonal(t *testing.T) {
	// Diagonal-only matrix: no TRSM, SYRK or GEMM at all.
	a := Analyze(denseRanks(8, 0), AllLocal)
	potrf, trsm, syrk, gemm := TaskCounts(a)
	if potrf != 8 || trsm != 0 || syrk != 0 || gemm != 0 {
		t.Fatalf("diagonal matrix should trim everything: %d %d %d %d", potrf, trsm, syrk, gemm)
	}
	if FinalDensity(a) != 0 {
		t.Fatalf("density should be 0")
	}
}

func TestFillInPrediction(t *testing.T) {
	// Structure: tiles (2,0) and (3,0) non-zero, everything else zero.
	// Panel 0 TRSMs on rows {2,3}; their cross product fills tile (3,2).
	nt := 4
	rk := make([][]int, nt)
	for m := range rk {
		rk[m] = make([]int, m)
	}
	rk[2][0] = 3
	rk[3][0] = 2
	a := Analyze(Ranks{N: nt, R: rk}, AllLocal)
	if !a.NonZero(2, 0) || !a.NonZero(3, 0) {
		t.Fatalf("initial non-zeros lost")
	}
	if !a.NonZero(3, 2) {
		t.Fatalf("fill-in (3,2) not predicted")
	}
	if a.NonZero(1, 0) || a.NonZero(2, 1) || a.NonZero(3, 1) {
		t.Fatalf("spurious non-zeros predicted")
	}
	if a.NbGemm(3, 2) != 1 || a.GemmAt(3, 2, 0) != 0 {
		t.Fatalf("gemm list for fill-in wrong: nb=%d", a.NbGemm(3, 2))
	}
	// The fill-in propagates: panel 2 must now TRSM row 3.
	if a.NbTrsm(2) != 1 || a.TrsmAt(2, 0) != 3 {
		t.Fatalf("fill-in must join later panels: nb=%d", a.NbTrsm(2))
	}
	// SYRK on diagonal 3 comes from panels 0 and 2.
	if a.NbSyrk(3) != 2 || a.SyrkAt(3, 0) != 0 || a.SyrkAt(3, 1) != 2 {
		t.Fatalf("syrk list wrong: %d", a.NbSyrk(3))
	}
}

func TestCascadingFillIn(t *testing.T) {
	// Arrow structure: only column 0 dense. Fill-in must cascade into the
	// whole trailing triangle (classic arrow-matrix fill).
	nt := 6
	rk := make([][]int, nt)
	for m := range rk {
		rk[m] = make([]int, m)
	}
	for m := 1; m < nt; m++ {
		rk[m][0] = 4
	}
	a := Analyze(Ranks{N: nt, R: rk}, AllLocal)
	for m := 1; m < nt; m++ {
		for n := 0; n < m; n++ {
			if !a.NonZero(m, n) {
				t.Fatalf("arrow fill-in should make (%d,%d) non-zero", m, n)
			}
		}
	}
	if FinalDensity(a) != 1 {
		t.Fatalf("arrow matrix fills completely")
	}
}

func TestTrimmedStrictlyFewerTasks(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	nt := 12
	rk := make([][]int, nt)
	for m := range rk {
		rk[m] = make([]int, m)
		for n := range rk[m] {
			if m-n <= 2 || rng.Float64() < 0.1 {
				rk[m][n] = 1 + rng.Intn(8)
			}
		}
	}
	a := Analyze(Ranks{N: nt, R: rk}, AllLocal)
	_, at, as, ag := TaskCounts(a)
	_, ft, fs, fg := TaskCounts(Full{Nt: nt})
	if at >= ft || as >= fs || ag >= fg {
		t.Fatalf("banded structure must trim tasks: trsm %d/%d syrk %d/%d gemm %d/%d",
			at, ft, as, fs, ag, fg)
	}
}

func TestDistributedAnalysisLocalLists(t *testing.T) {
	nt := 10
	rk := denseRanks(nt, 2)
	// Process owning only even (m+n) tiles.
	local := func(m, n int) bool { return (m+n)%2 == 0 }
	a := Analyze(rk, local)
	full := Analyze(rk, AllLocal)
	for m := 1; m < nt; m++ {
		for n := 0; n < m; n++ {
			// Counts (line 20) are global in both.
			if a.NbGemm(m, n) != full.NbGemm(m, n) {
				t.Fatalf("global gemm count must not depend on locality")
			}
			if local(m, n) {
				for i := 0; i < a.NbGemm(m, n); i++ {
					if a.GemmAt(m, n, i) != full.GemmAt(m, n, i) {
						t.Fatalf("local gemm list differs")
					}
				}
			}
		}
	}
	// Memory footprint of the distributed analysis must be smaller.
	if a.AnalysisBytes >= full.AnalysisBytes {
		t.Fatalf("distributed analysis should save memory: %d vs %d",
			a.AnalysisBytes, full.AnalysisBytes)
	}
}

func TestAnalysisOverheadMetering(t *testing.T) {
	a := Analyze(denseRanks(30, 3), AllLocal)
	if a.AnalysisBytes <= 0 {
		t.Fatalf("footprint not recorded")
	}
	if a.AnalysisTime < 0 {
		t.Fatalf("time not recorded")
	}
}

func TestTrsmListsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	nt := 15
	rk := make([][]int, nt)
	for m := range rk {
		rk[m] = make([]int, m)
		for n := range rk[m] {
			if rng.Float64() < 0.3 {
				rk[m][n] = 1 + rng.Intn(5)
			}
		}
	}
	a := Analyze(Ranks{N: nt, R: rk}, AllLocal)
	for k := 0; k < nt; k++ {
		for i := 1; i < a.NbTrsm(k); i++ {
			if a.TrsmAt(k, i) <= a.TrsmAt(k, i-1) {
				t.Fatalf("trsm list not ascending at k=%d", k)
			}
		}
	}
	for m := 1; m < nt; m++ {
		for n := 0; n < m; n++ {
			for i := 1; i < a.NbGemm(m, n); i++ {
				if a.GemmAt(m, n, i) <= a.GemmAt(m, n, i-1) {
					t.Fatalf("gemm list not ascending at (%d,%d)", m, n)
				}
			}
		}
	}
}

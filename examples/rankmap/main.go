// Rankmap: render Fig 1 of the paper — ASCII heatmaps of the rank
// distribution of a real compressed RBF operator before and after the
// TLR Cholesky factorization, for a small and a large shape parameter.
// '.' marks null tiles, digits scale with rank, 'D' is the dense
// diagonal.
package main

import (
	"fmt"
	"log"

	"tlrchol/internal/experiments"
)

func main() {
	res, err := experiments.Fig01(1.0)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range res.Shapes {
		fmt.Printf("=== shape parameter delta = %.3e ===\n", s.Delta)
		fmt.Printf("initial (after compression): density %.3f, ranks max/avg/min %d/%.1f/%d\n",
			s.Initial.Density, s.Initial.Max, s.Initial.Avg, s.Initial.Min)
		fmt.Println(experiments.Heatmap(s.InitialRanks))
		fmt.Printf("final (after TLR Cholesky): density %.3f, ranks max/avg/min %d/%.1f/%d\n",
			s.Final.Density, s.Final.Max, s.Final.Avg, s.Final.Min)
		fmt.Println(experiments.Heatmap(s.FinalRanks))
	}
	for _, t := range res.Tables() {
		fmt.Println(t.String())
	}
}

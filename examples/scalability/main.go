// Scalability: drive the distributed discrete-event simulator and the
// analytic estimator at the paper's scales — compare HiCMA-PaRSEC
// (trimming + band + diamond) against the Lorapo baseline on simulated
// Shaheen II and Fugaku clusters, and reproduce the flagship 52.57M /
// 2048-node run.
package main

import (
	"fmt"
	"os"

	"tlrchol/internal/dist"
	"tlrchol/internal/ranks"
	"tlrchol/internal/sim"
)

func main() {
	const (
		tile  = 4880
		delta = 3.7e-4
		tol   = 1e-4
	)

	fmt.Println("=== event-simulated run: 1.49M on 64 Shaheen II nodes ===")
	model := ranks.FromShape(ranks.PaperGeometry(1_490_000, tile, delta, tol))
	p, q := dist.Grid(64)
	cfg := sim.Config{
		Machine: sim.ShaheenII, Nodes: 64,
		Remap: dist.Remap{Data: dist.TwoDBC{P: p, Q: q}, Exec: dist.BandDiamond(p, q)},
	}
	w := sim.NewWorkload(model, &model, true)
	r, err := sim.Run(w, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("makespan %.1fs | %d tasks | %.1f GB moved in %d messages | imbalance %.2f | efficiency %.0f%%\n",
		r.Makespan, r.Tasks, r.CommVolume/1e9, r.Msgs, r.LoadImbalance(), 100*r.Efficiency())

	fmt.Println("\n=== estimator: ours vs Lorapo at 512 nodes (paper sizes) ===")
	for _, mach := range []sim.Machine{sim.ShaheenII, sim.Fugaku} {
		for _, nM := range []float64{1.49, 5.97, 11.95} {
			n := int(nM * 1e6)
			m := ranks.FromShape(ranks.PaperGeometry(n, tile, delta, tol))
			p, q := dist.Grid(512)
			ours := sim.Estimate(m, sim.Config{
				Machine: mach, Nodes: 512,
				Remap: dist.Remap{Data: dist.TwoDBC{P: p, Q: q}, Exec: dist.BandDiamond(p, q)},
			}, sim.EstOptions{Trimmed: true})
			lorapo := sim.Estimate(m, sim.Config{
				Machine: mach, Nodes: 512,
				Remap: dist.Remap{Data: dist.NewHybrid(p, q, 1)},
			}, sim.EstOptions{Trimmed: false, LorapoFloor: 4})
			fmt.Printf("%-9s N=%6.2fM  ours %7.1fs  lorapo %7.1fs  speedup %.2fx\n",
				mach.Name, nM, ours.Makespan, lorapo.Makespan, lorapo.Makespan/ours.Makespan)
		}
	}

	fmt.Println("\n=== flagship: 52.57M mesh points on 2048 nodes (65K cores) ===")
	big := ranks.FromShape(ranks.PaperGeometry(52_570_000, 7000, delta, tol))
	p, q = dist.Grid(2048)
	flag := sim.Estimate(big, sim.Config{
		Machine: sim.ShaheenII, Nodes: 2048,
		Remap: dist.Remap{Data: dist.TwoDBC{P: p, Q: q}, Exec: dist.BandDiamond(p, q)},
	}, sim.EstOptions{Trimmed: true})
	fmt.Printf("NT=%d tiles, simulated time-to-solution: %.1f minutes (paper: ~36 minutes)\n",
		big.NTiles, flag.Makespan/60)
}

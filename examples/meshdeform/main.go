// Meshdeform: the paper's motivating application end to end — 3D
// unstructured mesh deformation by RBF interpolation (Section IV-C).
// Boundary points on moving bodies carry known displacements; solving
// the RBF system with the TLR Cholesky factorization yields an
// interpolant that deforms the volume mesh smoothly.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"tlrchol/internal/core"
	"tlrchol/internal/dense"
	"tlrchol/internal/rbf"
	"tlrchol/internal/tilemat"
)

func main() {
	const (
		nb  = 2000 // boundary points (on the moving bodies)
		nv  = 500  // interior volume points to deform
		b   = 125
		tol = 1e-6
	)

	// Boundary geometry: the moving bodies.
	boundary := rbf.VirusPopulation(rbf.DefaultVirusConfig(nb))[:nb]
	kernel := rbf.Gaussian{Delta: 2 * rbf.DefaultShape(boundary), Nugget: 100 * tol}
	prob, _ := rbf.NewProblem(boundary, kernel)

	// Prescribed boundary displacements: a rigid translation plus a
	// smooth stretch, the kind of motion a fluid-structure step imposes.
	displacement := func(p rbf.Point) rbf.Point {
		return rbf.Point{
			X: 0.02 + 0.01*math.Sin(2*math.Pi*p.Y/1.7),
			Y: -0.015,
			Z: 0.01 * p.X / 1.7,
		}
	}
	db := dense.NewMatrix(nb, 3)
	for i, p := range prob.Points {
		d := displacement(p)
		db.Set(i, 0, d.X)
		db.Set(i, 1, d.Y)
		db.Set(i, 2, d.Z)
	}

	// Compress + factorize + solve the RBF system K·alpha = d_b.
	m, _ := tilemat.FromAssembler(nb, b, prob.Block, tol, 0)
	rep, err := core.Factorize(m, core.Options{Tol: tol, Trim: true})
	if err != nil {
		log.Fatal(err)
	}
	alpha := db.Clone()
	core.Solve(m, alpha)
	ip := &rbf.Interpolant{Problem: prob, Alpha: alpha}
	fmt.Printf("factorized %d x %d RBF system in %v (%d tasks)\n",
		nb, nb, rep.Elapsed.Round(1e6), rep.Potrf+rep.Trsm+rep.Syrk+rep.Gemm)

	// Verify the interpolation conditions d(x_bi) = d_bi at the boundary.
	var worst float64
	for i := 0; i < nb; i += 97 {
		got := ip.Eval(prob.Points[i])
		want := displacement(prob.Points[i])
		e := rbf.Dist(got, want)
		if e > worst {
			worst = e
		}
	}
	fmt.Printf("worst boundary interpolation error: %.2e\n", worst)

	// Deform interior volume points at controlled distances from the
	// surface: the Gaussian support makes the displacement blend from
	// the prescribed boundary motion down to zero within a few δ —
	// exactly the smooth, local mesh deformation the application wants.
	rng := rand.New(rand.NewSource(1))
	for _, mult := range []float64{0.5, 1, 2, 4} {
		var avg float64
		count := 0
		for i := 0; i < nv; i++ {
			base := prob.Points[rng.Intn(nb)]
			dir := rbf.Point{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}
			norm := dir.Norm()
			if norm == 0 {
				continue
			}
			off := mult * kernel.Delta / norm
			p := rbf.Point{X: base.X + dir.X*off, Y: base.Y + dir.Y*off, Z: base.Z + dir.Z*off}
			avg += ip.Eval(p).Norm()
			count++
		}
		fmt.Printf("volume points at %.1f*delta from the surface move %.3e on average\n",
			mult, avg/float64(count))
	}

	fmt.Println("mesh deformation complete: boundary motion propagated into the volume")
}

// Refinement: factorize at an aggressively loose accuracy threshold —
// much cheaper in ranks, flops and memory — then recover full solution
// accuracy with iterative refinement against the accurate operator.
// This turns the TLR factor into a preconditioner, the standard trick
// for squeezing the most out of low-rank solvers.
package main

import (
	"fmt"
	"log"

	"tlrchol/internal/core"
	"tlrchol/internal/dense"
	"tlrchol/internal/rbf"
	"tlrchol/internal/tilemat"
)

func main() {
	const (
		n = 2000
		b = 125
	)
	pts := rbf.VirusPopulation(rbf.DefaultVirusConfig(n))[:n]
	kernel := rbf.Gaussian{Delta: 3 * rbf.DefaultShape(pts), Nugget: 1e-2}
	prob, _ := rbf.NewProblem(pts, kernel)
	a := prob.Dense()

	rhs := dense.NewMatrix(n, 1)
	for i := 0; i < n; i++ {
		rhs.Set(i, 0, float64(i%11)-5)
	}

	for _, tol := range []float64{1e-10, 1e-3} {
		m, st := tilemat.FromAssembler(n, b, prob.Block, tol, 0)
		rep, err := core.Factorize(m, core.Options{Tol: tol, Trim: true})
		if err != nil {
			log.Fatal(err)
		}
		x := rhs.Clone()
		res, err := core.Refine(m, core.DenseOperator{A: a}, x, 25, 1e-12)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("tol=%.0e: factor %.1f MB, %v, avg rank %.1f | refined to %.1e in %d sweeps (initial solve: %.1e)\n",
			tol, float64(st.CompressedBytes)/1e6, rep.Elapsed.Round(1e6), m.Stats().Avg,
			res.Residuals[len(res.Residuals)-1], res.Iterations, res.Residuals[0])
	}
	fmt.Println("the loose factor is cheaper to build and store, yet refinement reaches the same final accuracy")
}

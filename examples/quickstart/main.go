// Quickstart: compress an RBF kernel matrix into tile low-rank form,
// factorize it with the trimmed task-parallel Cholesky, and solve a
// linear system — the minimal end-to-end use of the framework.
package main

import (
	"fmt"
	"log"

	"tlrchol/internal/core"
	"tlrchol/internal/dense"
	"tlrchol/internal/rbf"
	"tlrchol/internal/tilemat"
)

func main() {
	const (
		n   = 1500 // boundary mesh points
		b   = 125  // tile size
		tol = 1e-6 // accuracy threshold
	)

	// 1. Geometry: a synthetic population of spiked spheres ("viruses")
	//    in a cube, Hilbert-ordered for locality.
	pts := rbf.VirusPopulation(rbf.DefaultVirusConfig(n))[:n]
	kernel := rbf.Gaussian{Delta: 2 * rbf.DefaultShape(pts), Nugget: 100 * tol}
	prob, _ := rbf.NewProblem(pts, kernel)

	// 2. Assemble + compress tile by tile: the dense operator never
	//    exists in memory at once.
	m, st := tilemat.FromAssembler(n, b, prob.Block, tol, 0)
	stats := m.Stats()
	fmt.Printf("compressed %d x %d operator: %.1f MB -> %.1f MB, density %.2f, max rank %d\n",
		n, n, float64(st.DenseBytes)/1e6, float64(st.CompressedBytes)/1e6,
		stats.Density, stats.Max)

	// 3. TLR Cholesky with DAG trimming on the task runtime.
	rep, err := core.Factorize(m, core.Options{Tol: tol, Trim: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("factorized in %v with %d tasks (%d trimmed-away GEMM chains never created)\n",
		rep.Elapsed.Round(1e6), rep.Potrf+rep.Trsm+rep.Syrk+rep.Gemm, rep.Gemm)

	// 4. Solve A·x = rhs and verify.
	a := prob.Dense()
	xTrue := dense.NewMatrix(n, 1)
	for i := 0; i < n; i++ {
		xTrue.Set(i, 0, float64(i%7)-3)
	}
	rhs := dense.NewMatrix(n, 1)
	dense.Gemm(dense.NoTrans, dense.NoTrans, 1, a, xTrue, 0, rhs)
	x := rhs.Clone()
	core.Solve(m, x)
	fmt.Printf("solve residual: %.2e (threshold was %.0e)\n",
		core.ResidualNorm(a, x, rhs), tol)
}

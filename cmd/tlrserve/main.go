// Command tlrserve runs the TLR Cholesky solve service: an HTTP server
// that factorizes kernel operators on demand, caches the factors by
// problem fingerprint, coalesces concurrent solves into blocked
// multi-RHS substitutions and sheds load with 429s when full. With
// -shards N it runs a fleet: N shards behind a fingerprint router with
// fleet-wide single-flight and hot-factor replication. With -loadgen
// it instead drives such a server (its own in-process one by default)
// with an open-loop request stream — optionally multi-tenant, with
// Zipf-distributed problem popularity and mixed factorize/solve
// arrivals — and reports latency percentiles, per-shard load skew and
// cache/replication effectiveness.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"sync"
	"syscall"
	"time"

	"tlrchol/internal/obs"
	"tlrchol/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	cacheMB := flag.Int("cache-mb", 1024, "factor cache budget in MiB (per shard in fleet mode)")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond, "RHS coalescing window (negative disables batching)")
	maxBatch := flag.Int("max-batch", 64, "max columns per blocked solve")
	maxInflight := flag.Int("max-inflight", 64, "admitted requests before 429 (per shard in fleet mode)")
	maxN := flag.Int("max-n", 16384, "largest accepted problem size")
	workers := flag.Int("workers", 0, "factorization workers (0 = GOMAXPROCS)")
	solveWorkers := flag.Int("solve-workers", 0, "planned-solve workers (0 = GOMAXPROCS)")
	factorTimeout := flag.Duration("factor-timeout", 5*time.Minute, "per-factorization budget")
	solveTimeout := flag.Duration("solve-timeout", time.Minute, "per-batch solve budget")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
	trace := flag.Bool("trace", true, "record per-request span detail for the flight recorder (/v1/trace/<id>)")
	traceSpans := flag.Int("trace-spans", 0, "span ring capacity per traced request (0 = default 4096)")
	flightSlow := flag.Int("flight-slow", 0, "slowest traces retained per endpoint (0 = default 32)")
	accessLog := flag.String("access-log", "", "structured JSON access log: file path, or - for stdout (empty disables)")

	shards := flag.Int("shards", 0, "run a fleet of N shards behind a fingerprint router (0 = single server)")
	replicas := flag.Int("replicas", 1, "fleet: replicas per hot factor (0 disables replication)")
	promoteAfter := flag.Int("promote-after", 8, "fleet: solves within the promote window that mark a factor hot")
	promoteWindow := flag.Duration("promote-window", 10*time.Second, "fleet: popularity decay window")

	loadgen := flag.Bool("loadgen", false, "drive a server instead of being one")
	target := flag.String("target", "", "loadgen: base URL of the server (empty = start one in-process)")
	lgN := flag.Int("n", 2048, "loadgen: problem size")
	lgTile := flag.Int("tile", 128, "loadgen: tile size")
	lgTol := flag.Float64("tol", 1e-6, "loadgen: accuracy threshold")
	lgNRHS := flag.Int("nrhs", 1, "loadgen: RHS columns per request")
	lgRate := flag.Float64("rate", 50, "loadgen: request arrivals per second (open loop)")
	lgDur := flag.Duration("duration", 10*time.Second, "loadgen: run length")
	lgRefine := flag.Bool("refine", false, "loadgen: request iterative refinement")
	lgProblems := flag.Int("problems", 1, "loadgen: distinct problems (multi-tenant traffic)")
	lgZipf := flag.Float64("zipf", 1.3, "loadgen: Zipf skew of problem popularity (must be > 1)")
	lgFacFrac := flag.Float64("factorize-frac", 0, "loadgen: fraction of arrivals issued as /v1/factorize")
	flag.Parse()

	cfg := serve.Config{
		CacheBudget:      int64(*cacheMB) << 20,
		BatchWindow:      *batchWindow,
		MaxBatchCols:     *maxBatch,
		MaxInflight:      *maxInflight,
		MaxN:             *maxN,
		FactorizeTimeout: *factorTimeout,
		SolveTimeout:     *solveTimeout,
		Workers:          *workers,
		SolveWorkers:     *solveWorkers,
		DisableTracing:   !*trace,
		TraceSpanCap:     *traceSpans,
		FlightSlow:       *flightSlow,
	}
	switch *accessLog {
	case "":
	case "-":
		cfg.AccessLog = os.Stdout
	default:
		// Unbuffered appends: every line reaches the kernel as written,
		// so no close is needed before the os.Exit below.
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tlrserve: cannot open access log: %v\n", err)
			os.Exit(1)
		}
		cfg.AccessLog = f
	}

	// newHandler builds the service: a single Server, or a fleet of
	// shards behind the fingerprint router.
	newHandler := func() (http.Handler, string) {
		if *shards > 0 {
			fl := serve.NewFleet(serve.FleetConfig{
				Shards:        *shards,
				Replicas:      *replicas,
				PromoteAfter:  *promoteAfter,
				PromoteWindow: *promoteWindow,
				Shard:         cfg,
			})
			return fl.Handler(), fmt.Sprintf("fleet of %d shards (%d replicas per hot factor)", fl.NumShards(), *replicas)
		}
		return serve.New(cfg).Handler(), "single server"
	}

	if *loadgen {
		os.Exit(runLoadgen(newHandler, *target, loadgenConfig{
			n: *lgN, tile: *lgTile, tol: *lgTol, nrhs: *lgNRHS,
			rate: *lgRate, duration: *lgDur, refine: *lgRefine,
			problems: *lgProblems, zipfS: *lgZipf, facFrac: *lgFacFrac,
		}))
	}
	os.Exit(runServer(newHandler, *addr, *drainTimeout))
}

func runServer(newHandler func() (http.Handler, string), addr string, drainTimeout time.Duration) int {
	expvar.Publish("tlrserve.metrics", expvar.Func(func() any { return obs.Default.Map() }))
	h, mode := newHandler()
	srv := &http.Server{Addr: addr, Handler: h}

	l, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tlrserve: %v\n", err)
		return 1
	}
	fmt.Printf("tlrserve listening on http://%s as %s (POST /v1/factorize, POST /v1/solve, GET /v1/stats, GET /metrics)\n",
		l.Addr(), mode)

	// SIGTERM/SIGINT drain: stop accepting, let in-flight requests
	// (including batch leaders mid-window) complete, then exit.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	select {
	case err := <-done:
		fmt.Fprintf(os.Stderr, "tlrserve: %v\n", err)
		return 1
	case <-ctx.Done():
	}
	stop()
	fmt.Println("tlrserve: draining...")
	sctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		fmt.Fprintf(os.Stderr, "tlrserve: drain incomplete: %v\n", err)
		return 1
	}
	fmt.Println("tlrserve: drained cleanly")
	return 0
}

type loadgenConfig struct {
	n, tile, nrhs int
	tol, rate     float64
	duration      time.Duration
	refine        bool
	// problems is the number of distinct tenant problems; zipfS skews
	// their popularity (rank-1 problem hottest); facFrac is the share
	// of arrivals issued as /v1/factorize instead of /v1/solve.
	problems int
	zipfS    float64
	facFrac  float64
}

// runLoadgen fires an open-loop request stream (arrivals on a fixed
// clock, independent of completions — the schedule a latency SLO is
// measured against) and reports percentiles plus server-side cache,
// batching and — in fleet mode — routing and replication
// effectiveness.
func runLoadgen(newHandler func() (http.Handler, string), target string, lg loadgenConfig) int {
	if target == "" {
		h, mode := newHandler()
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(os.Stderr, "tlrserve: %v\n", err)
			return 1
		}
		srv := &http.Server{Handler: h}
		go srv.Serve(l)
		defer srv.Close()
		target = fmt.Sprintf("http://%s", l.Addr())
		fmt.Printf("loadgen: started in-process %s on %s\n", mode, target)
	}
	if lg.problems < 1 {
		lg.problems = 1
	}

	// Distinct problems differ by geometry seed: same size and accuracy,
	// different operators — the multi-tenant shape where each tenant
	// brings their own boundary mesh.
	specs := make([]serve.ProblemSpec, lg.problems)
	for i := range specs {
		specs[i] = serve.ProblemSpec{N: lg.n, Tile: lg.tile, Tol: lg.tol, Seed: int64(42 + i)}
	}
	fmt.Printf("loadgen: priming %d factor(s) (n=%d tile=%d tol=%.0e)...\n", lg.problems, lg.n, lg.tile, lg.tol)
	primeStart := time.Now()
	for i, spec := range specs {
		code, body, err := postJSON(target+"/v1/factorize", serve.FactorizeRequest{Problem: spec})
		if err != nil || code != http.StatusOK {
			fmt.Fprintf(os.Stderr, "loadgen: prime factorize %d failed: code=%d err=%v body=%s\n", i, code, err, body)
			return 1
		}
		if i == 0 {
			var prime serve.FactorizeResponse
			if json.Unmarshal(body, &prime) == nil && !prime.Cached {
				fmt.Printf("loadgen: solve plan built in %.3fms (%d levels, max width %d)\n",
					prime.Stats.PlanBuildMS, prime.Stats.PlanLevels, prime.Stats.PlanMaxWidth)
			}
		}
	}
	fmt.Printf("loadgen: factors ready in %v; driving %.0f req/s for %v (nrhs=%d refine=%v zipf=%.2f factorize-frac=%.2f)\n",
		time.Since(primeStart).Round(time.Millisecond), lg.rate, lg.duration, lg.nrhs, lg.refine, lg.zipfS, lg.facFrac)

	// Popularity: Zipf over problem ranks, so problem 0 dominates and
	// the tail problems trickle — the distribution that exercises
	// hot-factor replication. rand.Zipf requires s > 1.
	rng := rand.New(rand.NewSource(7))
	var zipf *rand.Zipf
	if lg.problems > 1 {
		s := lg.zipfS
		if s <= 1 {
			s = 1.1
		}
		zipf = rand.NewZipf(rng, s, 1, uint64(lg.problems-1))
	}

	var (
		mu          sync.Mutex
		latencies   []time.Duration
		substMS     []float64
		rejected    int
		failed      int
		batchSum    int
		replicaHits int
		perProblem  = make([]int, lg.problems)
		// Slowest successful request, tracked by trace id so the run's
		// tail is explainable offline via /v1/trace/<id>. When that
		// request rode a shared batch as a follower, the per-task span
		// detail sits on the batch leader's trace.
		slowest       time.Duration
		slowestID     string
		slowestLeader string
		slowestBatch  int
	)
	var wg sync.WaitGroup
	interval := time.Duration(float64(time.Second) / lg.rate)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.Now().Add(lg.duration)
	seed := int64(1)
	for time.Now().Before(deadline) {
		<-ticker.C
		seed++
		// Pick problem and request kind on the arrival clock's goroutine:
		// rand.Zipf is not safe for concurrent use.
		prob := 0
		if zipf != nil {
			prob = int(zipf.Uint64())
		}
		factorize := lg.facFrac > 0 && rng.Float64() < lg.facFrac
		perProblem[prob]++
		wg.Add(1)
		go func(seed int64, prob int, factorize bool) {
			defer wg.Done()
			var (
				code int
				body []byte
				err  error
			)
			start := time.Now()
			if factorize {
				code, body, err = postJSON(target+"/v1/factorize", serve.FactorizeRequest{Problem: specs[prob]})
			} else {
				code, body, err = postJSON(target+"/v1/solve", serve.SolveRequest{
					Problem: &specs[prob],
					NRHS:    lg.nrhs,
					RHSSeed: seed,
					Refine:  lg.refine,
				})
			}
			elapsed := time.Since(start)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err != nil:
				failed++
			case code == http.StatusTooManyRequests:
				rejected++
			case code != http.StatusOK:
				failed++
			case factorize:
				latencies = append(latencies, elapsed)
			default:
				latencies = append(latencies, elapsed)
				var resp serve.SolveResponse
				if json.Unmarshal(body, &resp) == nil {
					batchSum += resp.BatchCols
					substMS = append(substMS, resp.SubstMS)
					if resp.Replica {
						replicaHits++
					}
					if elapsed > slowest && resp.TraceID != "" {
						slowest, slowestID, slowestBatch = elapsed, resp.TraceID, resp.BatchCols
						slowestLeader = resp.LeaderTrace
					}
				}
			}
		}(seed, prob, factorize)
	}
	wg.Wait()

	if len(latencies) == 0 {
		fmt.Fprintf(os.Stderr, "loadgen: no successful requests (%d rejected, %d failed)\n", rejected, failed)
		return 1
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}
	total := len(latencies) + rejected + failed
	fmt.Printf("loadgen: %d requests (%d ok, %d rejected/429, %d failed) over %v\n",
		total, len(latencies), rejected, failed, lg.duration)
	fmt.Printf("latency  p50 %v   p95 %v   p99 %v   max %v\n",
		pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), latencies[len(latencies)-1].Round(time.Microsecond))
	// Substitution-only latency: time inside the triangular sweeps as
	// reported per response — no cache waits, no batching window, no
	// residual evaluation. The gap between this line and the one above
	// is queueing and service overhead, not solve work.
	if len(substMS) > 0 {
		sort.Float64s(substMS)
		spct := func(p float64) float64 { return substMS[int(p*float64(len(substMS)-1))] }
		fmt.Printf("solve-only  p50 %.3fms   p95 %.3fms   p99 %.3fms   max %.3fms\n",
			spct(0.50), spct(0.95), spct(0.99), substMS[len(substMS)-1])
	}
	fmt.Printf("mean batch width %.1f columns\n", float64(batchSum)/float64(len(latencies)))
	if lg.problems > 1 {
		top := perProblem[0]
		sent := 0
		for _, c := range perProblem {
			sent += c
		}
		fmt.Printf("tenancy: %d problems, hottest got %d/%d arrivals (%.1f%%), %d served by replicas\n",
			lg.problems, top, sent, 100*float64(top)/float64(sent), replicaHits)
	}

	// Tail report: name the slowest request and pull its retained trace
	// so the run's worst case is explainable after the fact.
	if slowestID != "" {
		fmt.Printf("slowest request: trace %s e2e %v batch %d — GET /v1/trace/%s\n",
			slowestID, slowest.Round(time.Microsecond), slowestBatch, slowestID)
		fetchTrace := func(label, id string) {
			resp, err := http.Get(target + "/v1/trace/" + id)
			if err != nil {
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				fmt.Printf("%s: not retained (status %d — aged out of the flight recorder)\n", label, resp.StatusCode)
				return
			}
			if tc, err := obs.ValidateChromeTrace(body); err == nil {
				fmt.Printf("%s: %d spans across %d tracks (valid Chrome/Perfetto trace, %d bytes)\n",
					label, tc.Spans, tc.Workers, len(body))
			} else {
				fmt.Fprintf(os.Stderr, "loadgen: %s invalid: %v\n", label, err)
			}
		}
		fetchTrace("slowest trace", slowestID)
		if slowestLeader != "" && slowestLeader != slowestID {
			// The slowest request followed another request's batch; its
			// per-task execution spans are on the leader's trace.
			fetchTrace("its batch leader trace "+slowestLeader, slowestLeader)
		}
	}

	// Server-side accounting: the fleet report (per-shard skew,
	// single-flight totals, replication) when the target is a fleet,
	// the single-server cache report otherwise.
	if resp, err := http.Get(target + "/v1/stats"); err == nil {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var fst serve.FleetStatsResponse
		if json.Unmarshal(body, &fst) == nil && len(fst.Shards) > 0 {
			reportFleet(fst)
		} else {
			var st serve.StatsResponse
			if json.Unmarshal(body, &st) == nil {
				refs := st.Cache.Hits + st.Cache.Waits + st.Cache.Misses
				if refs > 0 {
					fmt.Printf("factor cache: %.1f%% hit rate (%d hits, %d singleflight waits, %d misses, %d factorization runs)\n",
						100*float64(st.Cache.Hits+st.Cache.Waits)/float64(refs),
						st.Cache.Hits, st.Cache.Waits, st.Cache.Misses, st.Totals["serve.factorize.runs"])
				}
				if st.Request.Count > 0 {
					p := st.Request.P99
					fmt.Printf("p99 breakdown (trace %s): e2e %.3fms = queue %.3f + factor %.3f + batch-wait %.3f + subst %.3f + refine %.3f + resid %.3f + other %.3f\n",
						p.TraceID, p.E2EMS, p.QueueMS, p.FactorMS, p.BatchWaitMS, p.SubstMS, p.RefineMS, p.ResidMS, p.OtherMS)
				}
			}
		}
	}
	return 0
}

// reportFleet prints the fleet-side view of the run: fleet p99, the
// per-shard load split (skew = hottest shard over the mean), and how
// much traffic replication absorbed.
func reportFleet(fst serve.FleetStatsResponse) {
	fmt.Printf("fleet: %d shards, %d factorization runs fleet-wide (%d single-flight waits, %d cache hits)\n",
		len(fst.Shards), fst.SingleFlight.FactorizeRuns, fst.SingleFlight.Waits, fst.SingleFlight.CacheHits)
	var sum, max uint64
	for _, sh := range fst.Shards {
		acc := sh.Admission.Accepted
		sum += acc
		if acc > max {
			max = acc
		}
		drain := ""
		if sh.Draining {
			drain = " (draining)"
		}
		fmt.Printf("  shard %d%s: accepted %d, rejected %d, cache %d entries %d evictions, replicas %d (%d hits), factorizations %d\n",
			sh.ID, drain, acc, sh.Admission.Rejected, sh.Cache.Entries, sh.Cache.Evictions,
			sh.Replica.Factors, sh.Replica.Hits, sh.FactorizeRuns)
	}
	if sum > 0 && len(fst.Shards) > 0 {
		mean := float64(sum) / float64(len(fst.Shards))
		fmt.Printf("load skew: hottest shard %.2fx mean (%d of %d accepted)\n", float64(max)/mean, max, sum)
	}
	fmt.Printf("router: %d requests, %d fallback re-routes, %d fleet-wide rejections, %d replica serves\n",
		fst.Router.Requests, fst.Router.Fallbacks, fst.Router.Rejected, fst.Router.ReplicaServes)
	fmt.Printf("replication: %d promotions, %d drops, %d active replicas\n",
		fst.Replication.Promotions, fst.Replication.Drops, fst.Replication.Active)
	if fst.Request.Count > 0 {
		p := fst.Request.P99
		fmt.Printf("fleet p99 breakdown (trace %s): e2e %.3fms = queue %.3f + factor %.3f + batch-wait %.3f + subst %.3f + refine %.3f + resid %.3f + other %.3f\n",
			p.TraceID, p.E2EMS, p.QueueMS, p.FactorMS, p.BatchWaitMS, p.SubstMS, p.RefineMS, p.ResidMS, p.OtherMS)
	}
}

func postJSON(url string, v any) (int, []byte, error) {
	buf, err := json.Marshal(v)
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, body, err
}

// Command benchreport turns `go test -bench` output into a JSON
// performance snapshot and compares two snapshots for regressions.
//
// Snapshot mode (default) reads benchmark output on stdin and writes a
// BENCH JSON document to stdout:
//
//	go test -run='^$' -bench=. | go run ./cmd/benchreport > BENCH_$(date -u +%Y%m%dT%H%M%SZ).json
//
// Compare mode takes two snapshots (older first), prints a before/after
// table and exits non-zero when any tracked metric regresses beyond the
// threshold (default 25%):
//
//	go run ./cmd/benchreport -compare BENCH_old.json BENCH_new.json
//
// Tracked metrics: ns/op and allocs/op must not grow, gflops must not
// shrink, beyond threshold. This is the gate scripts/bench.sh applies to
// every new snapshot, giving the repo a measured perf trajectory.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Snapshot is the persisted BENCH_*.json document.
type Snapshot struct {
	Schema     string                  `json:"schema"`
	Generated  string                  `json:"generated"`
	GoVersion  string                  `json:"go"`
	Meta       Meta                    `json:"meta,omitempty"`
	Benchmarks map[string]BenchMetrics `json:"benchmarks"`
}

// Meta records where and how a snapshot was taken, so a comparison
// across machines or commits is recognizable as such instead of
// reading like a regression.
type Meta struct {
	GitCommit  string `json:"git_commit,omitempty"`
	GOOS       string `json:"goos,omitempty"`
	GOARCH     string `json:"goarch,omitempty"`
	GOMAXPROCS int    `json:"gomaxprocs,omitempty"`
	CPU        string `json:"cpu,omitempty"`
}

func (m Meta) String() string {
	parts := []string{}
	if m.GitCommit != "" {
		parts = append(parts, "commit "+m.GitCommit)
	}
	if m.GOOS != "" {
		parts = append(parts, m.GOOS+"/"+m.GOARCH)
	}
	if m.GOMAXPROCS > 0 {
		parts = append(parts, fmt.Sprintf("GOMAXPROCS=%d", m.GOMAXPROCS))
	}
	if m.CPU != "" {
		parts = append(parts, m.CPU)
	}
	return strings.Join(parts, ", ")
}

// collectMeta gathers the run environment. Best-effort: a missing git
// binary or /proc simply leaves fields empty.
func collectMeta() Meta {
	m := Meta{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, GOMAXPROCS: runtime.GOMAXPROCS(0)}
	if out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output(); err == nil {
		m.GitCommit = strings.TrimSpace(string(out))
	}
	if data, err := os.ReadFile("/proc/cpuinfo"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if name, val, ok := strings.Cut(line, ":"); ok &&
				strings.TrimSpace(name) == "model name" {
				m.CPU = strings.TrimSpace(val)
				break
			}
		}
	}
	return m
}

// BenchMetrics holds the per-benchmark measurements we track.
type BenchMetrics struct {
	Iters    int64    `json:"iters"`
	NsPerOp  float64  `json:"ns_op"`
	AllocsOp *float64 `json:"allocs_op,omitempty"`
	BytesOp  *float64 `json:"b_op,omitempty"`
	GFlops   *float64 `json:"gflops,omitempty"`
	// Extra carries any other custom `b.ReportMetric` outputs.
	Extra map[string]float64 `json:"extra,omitempty"`
}

func main() {
	compare := flag.String("compare", "", "old snapshot to compare against (requires a second positional arg: the new snapshot)")
	threshold := flag.Float64("threshold", 0.25, "relative regression threshold for -compare")
	flag.Parse()

	if *compare != "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: benchreport -compare OLD.json NEW.json")
			os.Exit(2)
		}
		if err := runCompare(*compare, flag.Arg(0), *threshold); err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		return
	}

	snap, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchreport: no benchmark lines found on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
}

// parseBench reads `go test -bench` text output. Benchmark result lines
// look like:
//
//	BenchmarkDenseGemm256-4   100  11873968 ns/op  2.826 gflops  3 allocs/op
func parseBench(r *os.File) (*Snapshot, error) {
	snap := &Snapshot{
		Schema:     "tlrchol-bench/v1",
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		Meta:       collectMeta(),
		Benchmarks: map[string]BenchMetrics{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		// Strip the GOMAXPROCS suffix (-1, -4, ...).
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		m := BenchMetrics{Iters: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				m.NsPerOp = val
			case "allocs/op":
				v := val
				m.AllocsOp = &v
			case "B/op":
				v := val
				m.BytesOp = &v
			case "gflops":
				v := val
				m.GFlops = &v
			default:
				if m.Extra == nil {
					m.Extra = map[string]float64{}
				}
				m.Extra[unit] = val
			}
		}
		if m.NsPerOp <= 0 {
			continue
		}
		// With -count > 1 the same benchmark appears several times; keep
		// the fastest sample. Best-of-N rejects transient noisy-neighbor
		// interference that a single sample (or a mean) would absorb.
		if prev, ok := snap.Benchmarks[name]; ok && prev.NsPerOp <= m.NsPerOp {
			continue
		}
		snap.Benchmarks[name] = m
	}
	return snap, sc.Err()
}

func loadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

type regression struct {
	bench, metric string
	old, new      float64
}

// runCompare prints the before/after table and fails on regressions.
func runCompare(oldPath, newPath string, threshold float64) error {
	oldS, err := loadSnapshot(oldPath)
	if err != nil {
		return err
	}
	newS, err := loadSnapshot(newPath)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(newS.Benchmarks))
	for name := range newS.Benchmarks {
		if _, ok := oldS.Benchmarks[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return fmt.Errorf("no common benchmarks between %s and %s", oldPath, newPath)
	}

	if s := oldS.Meta.String(); s != "" {
		fmt.Printf("old: %s (%s)\n", s, oldS.Generated)
	}
	if s := newS.Meta.String(); s != "" {
		fmt.Printf("new: %s (%s)\n", s, newS.Generated)
	}
	if oldS.Meta.CPU != "" && newS.Meta.CPU != "" && oldS.Meta.CPU != newS.Meta.CPU {
		fmt.Println("note: snapshots were taken on different CPUs; deltas may reflect hardware, not code")
	}

	var regs []regression
	fmt.Printf("%-24s %14s %14s %8s %10s %10s\n",
		"benchmark", "old ns/op", "new ns/op", "speedup", "old allocs", "new allocs")
	for _, name := range names {
		o, n := oldS.Benchmarks[name], newS.Benchmarks[name]
		speedup := o.NsPerOp / n.NsPerOp
		oa, na := "-", "-"
		if o.AllocsOp != nil {
			oa = strconv.FormatFloat(*o.AllocsOp, 'f', 0, 64)
		}
		if n.AllocsOp != nil {
			na = strconv.FormatFloat(*n.AllocsOp, 'f', 0, 64)
		}
		fmt.Printf("%-24s %14.0f %14.0f %7.2fx %10s %10s\n",
			name, o.NsPerOp, n.NsPerOp, speedup, oa, na)
		if n.NsPerOp > o.NsPerOp*(1+threshold) {
			regs = append(regs, regression{name, "ns/op", o.NsPerOp, n.NsPerOp})
		}
		if o.AllocsOp != nil && n.AllocsOp != nil && *n.AllocsOp > *o.AllocsOp*(1+threshold)+0.5 {
			regs = append(regs, regression{name, "allocs/op", *o.AllocsOp, *n.AllocsOp})
		}
		if o.GFlops != nil && n.GFlops != nil && *n.GFlops < *o.GFlops*(1-threshold) {
			regs = append(regs, regression{name, "gflops", *o.GFlops, *n.GFlops})
		}
	}
	if len(regs) > 0 {
		fmt.Println()
		for _, r := range regs {
			fmt.Printf("REGRESSION %s %s: %.3g -> %.3g (threshold %.0f%%)\n",
				r.bench, r.metric, r.old, r.new, threshold*100)
		}
		return fmt.Errorf("%d metric(s) regressed beyond %.0f%%", len(regs), threshold*100)
	}
	fmt.Printf("\nno regressions beyond %.0f%% across %d benchmarks\n", threshold*100, len(names))
	return nil
}

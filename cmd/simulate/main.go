// Command simulate drives the distributed performance models directly:
// pick a machine, node count, problem and configuration, and get the
// predicted time-to-solution with its resource breakdown — either from
// the discrete-event simulator (exact DAG, bounded sizes) or the
// analytic estimator (any size).
package main

import (
	"flag"
	"fmt"
	"os"

	"tlrchol/internal/dist"
	"tlrchol/internal/obs"
	"tlrchol/internal/ranks"
	"tlrchol/internal/sim"
	"tlrchol/internal/trace"
)

func main() {
	machineName := flag.String("machine", "shaheen", "machine preset: shaheen or fugaku")
	nodes := flag.Int("nodes", 64, "number of nodes (one process per node)")
	n := flag.Int("n", 1_490_000, "matrix size")
	b := flag.Int("b", 4880, "tile size")
	delta := flag.Float64("delta", 3.7e-4, "Gaussian shape parameter")
	tol := flag.Float64("tol", 1e-4, "accuracy threshold")
	trimOn := flag.Bool("trim", true, "DAG trimming (Algorithm 1)")
	distName := flag.String("dist", "band+diamond", "execution distribution: 2dbc, band, band+diamond, lorapo")
	lorapo := flag.Bool("lorapo", false, "model the Lorapo baseline (untrimmed, floor-rank storage)")
	engine := flag.String("engine", "auto", "auto, event (exact DAG) or estimate (analytic)")
	gantt := flag.Bool("gantt", false, "print a per-process Gantt chart (event engine only)")
	critpath := flag.Bool("critpath", false, "print the realized critical-path attribution (event engine only)")
	traceOut := flag.String("trace-out", "", "write a Chrome/Perfetto trace-event JSON of the simulated schedule (event engine only)")
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "simulate: "+format+"\n", args...)
		os.Exit(2)
	}
	if *nodes <= 0 {
		fail("-nodes must be positive, got %d", *nodes)
	}
	if *n <= 0 {
		fail("-n must be positive, got %d", *n)
	}
	if *b <= 0 {
		fail("-b must be positive, got %d", *b)
	}
	if *b > *n {
		fail("-b (%d) must not exceed -n (%d)", *b, *n)
	}
	if *tol <= 0 {
		fail("-tol must be positive, got %g", *tol)
	}
	if *delta <= 0 {
		fail("-delta must be positive, got %g", *delta)
	}

	var machine sim.Machine
	switch *machineName {
	case "shaheen":
		machine = sim.ShaheenII
	case "fugaku":
		machine = sim.Fugaku
	default:
		fmt.Fprintf(os.Stderr, "unknown machine %q\n", *machineName)
		os.Exit(2)
	}
	p, q := dist.Grid(*nodes)
	data := dist.TwoDBC{P: p, Q: q}
	var remap dist.Remap
	switch *distName {
	case "2dbc":
		remap = dist.Remap{Data: data}
	case "band":
		remap = dist.Remap{Data: data, Exec: dist.NewBand(p, q)}
	case "band+diamond":
		remap = dist.Remap{Data: data, Exec: dist.BandDiamond(p, q)}
	case "lorapo":
		remap = dist.Remap{Data: dist.NewHybrid(p, q, 1)}
	default:
		fmt.Fprintf(os.Stderr, "unknown distribution %q\n", *distName)
		os.Exit(2)
	}
	cfg := sim.Config{Machine: machine, Nodes: *nodes, Remap: remap,
		CollectTrace: *gantt || *critpath || *traceOut != ""}

	model := ranks.FromShape(ranks.PaperGeometry(*n, *b, *delta, *tol))
	fmt.Printf("model: NT=%d, max rank %d, cutoff %d, density %.4f\n",
		model.NTiles, model.MaxRank, model.CutoffTiles, model.Density())

	// The event simulator materializes the DAG; refuse sizes that would
	// not fit and fall back to the estimator under -engine auto.
	potrf, trsm, syrk, gemm := 0, 0, 0, 0
	est := sim.Estimate(model, cfg, sim.EstOptions{Trimmed: *trimOn})
	potrf, trsm, syrk, gemm = est.Potrf, est.Trsm, est.Syrk, est.Gemm
	if !*trimOn {
		nt := model.NTiles
		gemm = nt * (nt - 1) * (nt - 2) / 6
	}
	tasks := potrf + trsm + syrk + gemm
	useEvent := *engine == "event" || (*engine == "auto" && tasks <= 6_000_000 && !*lorapo)

	var r sim.Result
	switch {
	case *lorapo:
		r = sim.Estimate(model, cfg, sim.EstOptions{Trimmed: false, LorapoFloor: 4})
		fmt.Println("engine: analytic estimator (Lorapo storage model)")
	case useEvent:
		w := sim.NewWorkload(model, &model, *trimOn)
		var err error
		r, err = sim.Run(w, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("engine: discrete-event simulator")
	default:
		r = sim.Estimate(model, cfg, sim.EstOptions{Trimmed: *trimOn})
		fmt.Println("engine: analytic estimator")
	}

	fmt.Printf("time-to-solution: %.1fs (%.1f min)\n", r.Makespan, r.Makespan/60)
	fmt.Printf("tasks: %d (potrf/trsm/syrk/gemm = %d/%d/%d/%d, %d null)\n",
		r.Tasks, r.Potrf, r.Trsm, r.Syrk, r.Gemm, r.NullTasks)
	fmt.Printf("critical path (kernel roofline): %.1fs -> efficiency %.1f%%\n",
		r.CriticalPathTime, 100*r.Efficiency())
	fmt.Printf("load imbalance: %.2f | comm: %.1f GB", r.LoadImbalance(), r.CommVolume/1e9)
	if r.Msgs > 0 {
		fmt.Printf(" in %d messages", r.Msgs)
	}
	if r.ShipVolume > 0 {
		fmt.Printf(" | remap ship: %.1f GB", r.ShipVolume/1e9)
	}
	fmt.Println()
	if *gantt && len(r.Trace) > 0 {
		fmt.Println(trace.Gantt(r.Trace, 100))
	}
	if *critpath && len(r.PathNodes) > 0 {
		fmt.Print(obs.CriticalPath(r.PathNodes).String())
	}
	if *traceOut != "" && len(r.Trace) > 0 {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
			os.Exit(1)
		}
		meta := map[string]any{
			"machine": *machineName, "nodes": *nodes, "n": *n, "b": *b,
			"simulated": true,
		}
		if err := obs.WriteChromeTrace(f, trace.FromRecords(r.Trace), meta); err != nil {
			fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace: %d simulated spans -> %s\n", len(r.Trace), *traceOut)
	}
}

// Command tlrchol factorizes a synthetic RBF mesh-deformation operator
// with the TLR Cholesky framework: it generates the virus-population
// geometry, Hilbert-orders it, assembles and compresses the kernel
// matrix tile by tile, runs the (optionally trimmed) factorization on
// the task runtime, solves a deformation system, and reports the rank
// statistics, task counts and accuracy.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	_ "net/http/pprof"
	"os"
	"time"

	"tlrchol/internal/core"
	"tlrchol/internal/dense"
	"tlrchol/internal/dist"
	"tlrchol/internal/obs"
	"tlrchol/internal/ranks"
	"tlrchol/internal/rbf"
	"tlrchol/internal/runtime"
	"tlrchol/internal/sim"
	"tlrchol/internal/tilemat"
	"tlrchol/internal/tlr"
	"tlrchol/internal/trace"
	sverify "tlrchol/internal/verify"
)

// distRemap maps a -dist name to the paper's distributions over the
// squarest P×Q grid for the node count: plain 2DBC, the Lorapo hybrid,
// and the band / diamond execution remaps of Section VII (data stays
// 2DBC; band and band+diamond give the executing ranks).
func distRemap(name string, nodes int) (dist.Remap, error) {
	p, q := dist.Grid(nodes)
	switch name {
	case "2dbc":
		return dist.Remap{Data: dist.TwoDBC{P: p, Q: q}}, nil
	case "lorapo":
		return dist.Remap{Data: dist.NewHybrid(p, q, 1)}, nil
	case "band":
		return dist.Remap{Data: dist.TwoDBC{P: p, Q: q}, Exec: dist.NewBand(p, q)}, nil
	case "diamond":
		return dist.Remap{Data: dist.TwoDBC{P: p, Q: q}, Exec: dist.BandDiamond(p, q)}, nil
	}
	return dist.Remap{}, fmt.Errorf("unknown distribution %q (want 2dbc, lorapo, band or diamond)", name)
}

func main() {
	n := flag.Int("n", 2048, "matrix size (number of boundary mesh points)")
	b := flag.Int("b", 128, "tile size")
	deltaFactor := flag.Float64("delta-factor", 2, "shape parameter as a multiple of ½·min distance")
	tol := flag.Float64("tol", 1e-6, "accuracy threshold")
	trim := flag.Bool("trim", true, "enable DAG trimming (Algorithm 1)")
	workers := flag.Int("workers", 0, "worker threads (0 = GOMAXPROCS)")
	seq := flag.Bool("sequential", false, "bypass the runtime (reference loop order)")
	verify := flag.Bool("verify", true, "verify the factor against the dense operator (costs O(n^3) memory/time)")
	check := flag.Bool("check", false, "statically verify the trimming analysis and task graph before executing (package verify)")
	showTrace := flag.Bool("trace", false, "print a per-class time breakdown and an ASCII Gantt chart")
	nested := flag.Int("nested", 0, "nested-parallel diagonal POTRF sub-tile size (0 = off)")
	kernelName := flag.String("kernel", "gaussian", "RBF kernel: gaussian (global support) or wendland (compact support)")
	traceOut := flag.String("trace-out", "", "write a Chrome/Perfetto trace-event JSON file of the execution")
	showMetrics := flag.Bool("metrics", false, "print the metrics registry (counters, gauges, histograms) after the run")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and expvar metrics on this address (e.g. localhost:6060)")
	nodes := flag.Int("nodes", 0, "virtual cluster nodes for distributed execution (0 = shared memory)")
	distName := flag.String("dist", "2dbc", "distribution for -nodes: 2dbc, lorapo, band or diamond")
	solveK := flag.Int("solve", 0, "after factorizing, solve this many random RHS in one blocked solve and report residuals (works without -verify's dense operator)")
	compress := flag.String("compress", "svd", "tile compressor: svd (deterministic) or ara (blocked adaptive randomized approximation)")
	araBS := flag.Int("ara-bs", 0, "ara sampling block size (0 = compressor default; requires -compress ara)")
	factorKind := flag.String("factor", "chol", "factorization: chol (SPD only) or ldlt (signed, symmetric indefinite)")
	augmented := flag.Bool("augmented", false, "factor the polynomial-augmented saddle-point system [K P; P^T 0] (indefinite; requires -factor ldlt)")
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "tlrchol: "+format+"\n", args...)
		os.Exit(2)
	}
	if *n <= 0 {
		fail("-n must be positive, got %d", *n)
	}
	if *b <= 0 {
		fail("-b must be positive, got %d", *b)
	}
	if *b > *n {
		fail("-b (%d) must not exceed -n (%d)", *b, *n)
	}
	if *tol <= 0 || math.IsNaN(*tol) {
		fail("-tol must be positive, got %g", *tol)
	}
	if *workers < 0 {
		fail("-workers must be ≥ 0 (0 = GOMAXPROCS), got %d", *workers)
	}
	if *nested < 0 {
		fail("-nested must be ≥ 0 (0 = off), got %d", *nested)
	}
	if *nodes < 0 {
		fail("-nodes must be ≥ 0 (0 = shared memory), got %d", *nodes)
	}
	if *solveK < 0 {
		fail("-solve must be ≥ 0, got %d", *solveK)
	}
	switch *compress {
	case "svd", "ara":
	default:
		fail("unknown -compress %q (want svd or ara)", *compress)
	}
	if *araBS < 0 {
		fail("-ara-bs must be ≥ 0, got %d", *araBS)
	}
	if *araBS > 0 && *compress != "ara" {
		fail("-ara-bs requires -compress ara")
	}
	switch *factorKind {
	case "chol", "ldlt":
	default:
		fail("unknown -factor %q (want chol or ldlt)", *factorKind)
	}
	ldlt := *factorKind == "ldlt"
	if *augmented && !ldlt {
		fail("-augmented builds an indefinite saddle-point system; it requires -factor ldlt")
	}
	if ldlt && *nested > 0 {
		fail("-nested is not supported with -factor ldlt")
	}
	if ldlt && *nodes > 0 {
		fail("-factor ldlt is not supported under -nodes (distributed execution factors Cholesky only)")
	}
	if *nodes > 0 {
		if _, err := distRemap(*distName, *nodes); err != nil {
			fail("%v", err)
		}
		if *seq {
			fail("-nodes and -sequential are mutually exclusive")
		}
		if *nested > 0 {
			fail("-nested is not supported under -nodes (diagonal tiles are single tasks per node)")
		}
	}

	if *pprofAddr != "" {
		expvar.Publish("tlrchol.metrics", expvar.Func(func() any { return obs.Default.Map() }))
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof server: %v\n", err)
			}
		}()
		fmt.Printf("pprof/expvar serving on http://%s/debug/pprof and /debug/vars\n", *pprofAddr)
	}

	fmt.Printf("generating %d mesh points (virus population)...\n", *n)
	pts := rbf.VirusPopulation(rbf.DefaultVirusConfig(*n))[:*n]
	delta := *deltaFactor * rbf.DefaultShape(pts)
	var kernel rbf.Kernel
	switch *kernelName {
	case "gaussian":
		kernel = rbf.Gaussian{Delta: delta, Nugget: 100 * *tol}
	case "wendland":
		kernel = rbf.WendlandC2{Delta: 3 * delta, Nugget: 100 * *tol}
	default:
		fmt.Fprintf(os.Stderr, "unknown kernel %q\n", *kernelName)
		os.Exit(2)
	}
	prob, _ := rbf.NewProblem(pts, kernel)
	fmt.Printf("kernel %s, shape parameter delta=%.3e, tol=%.0e\n", *kernelName, delta, *tol)

	// The augmented system appends the 4 polynomial constraint rows, so
	// the factored operator is slightly larger than the point count.
	dim := *n
	asm := tilemat.Assembler(prob.Block)
	if *augmented {
		dim = prob.AugmentedDim()
		asm = prob.AugmentedBlock
		fmt.Printf("augmented saddle-point system: dim=%d (%d points + 4 polynomial constraints)\n", dim, *n)
	}
	comp, cerr := tlr.CompressorFor(*compress, *araBS, 42)
	if cerr != nil {
		fail("%v", cerr)
	}

	start := time.Now()
	m, st := tilemat.FromAssemblerComp(dim, *b, asm, *tol, 0, comp)
	compT := time.Since(start)
	stats := m.Stats()
	fmt.Printf("compression: %v  (dense %.1f MB -> TLR %.1f MB, %.1fx)\n",
		compT.Round(time.Millisecond),
		float64(st.DenseBytes)/1e6, float64(st.CompressedBytes)/1e6,
		float64(st.DenseBytes)/float64(st.CompressedBytes))
	fmt.Printf("initial structure: density=%.3f  ranks max/avg/min = %d/%.1f/%d  (NT=%d)\n",
		stats.Density, stats.Max, stats.Avg, stats.Min, m.NT)
	rankBounds := []float64{0, 2, 4, 8, 16, 32, 64, 128, 256}
	m.ObserveRanks(obs.Default.Histogram("tilerank.before", rankBounds...))
	obs.Default.Counter("bytes.dense").Add(0, uint64(st.DenseBytes))
	obs.Default.Counter("bytes.compressed").Add(0, uint64(st.CompressedBytes))

	var op *tilemat.Matrix
	if *solveK > 0 {
		// Keep the unfactorized compressed operator for residual
		// evaluation: -solve must work without -verify's dense matrix.
		op = m.Clone()
	}

	if *check && !*seq {
		s := core.Structure(m, *trim)
		var fs sverify.Findings
		if *trim {
			fs = append(fs, sverify.CheckTrim(s, core.Ranks(m))...)
		}
		var g *runtime.Graph
		if ldlt {
			g = core.BuildGraphLDLt(m, s, core.Options{Tol: *tol})
		} else {
			g = core.BuildGraph(m, s, core.Options{Tol: *tol, NestedDiag: *nested})
		}
		fs = append(fs, sverify.CheckGraph(g)...)
		for _, f := range fs {
			fmt.Fprintf(os.Stderr, "static check: %v\n", f)
		}
		if err := fs.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "static verification failed; refusing to execute")
			os.Exit(1)
		}
		passes := "graph acyclic and hazard-complete"
		if *trim {
			passes = "trim sound, " + passes
		}
		fmt.Printf("static verification: %s (%d tasks, %d edges)\n", passes, g.Tasks(), g.Edges())
	}

	var ref *dense.Matrix
	if *verify {
		if *augmented {
			ref = prob.AugmentedBlock(0, dim, 0, dim)
		} else {
			ref = prob.Dense()
		}
	}
	var tr *obs.Tracer
	if *traceOut != "" {
		if *seq {
			fmt.Fprintln(os.Stderr, "-trace-out requires the task runtime; ignoring under -sequential")
			*traceOut = ""
		} else {
			tr = obs.NewTracer()
			obs.Activate(tr)
		}
	}
	var rep core.Report
	var err error
	if *nodes > 0 {
		remap, _ := distRemap(*distName, *nodes)
		// Predict the communication of this exact configuration from the
		// pre-factorization rank structure, before execution mutates it.
		w := sim.NewWorkload(ranks.FromMatrix{M: m}, nil, *trim)
		pred, perr := sim.Run(w, sim.Config{Machine: sim.ShaheenII, Nodes: *nodes, Remap: remap})
		if perr != nil {
			fmt.Fprintf(os.Stderr, "sim prediction failed: %v\n", perr)
			os.Exit(1)
		}
		comm := obs.NewCommTracker(*nodes)
		var drep core.DistReport
		drep, err = core.FactorizeDistributed(m, core.DistOptions{
			Tol: *tol, Trim: *trim, Nodes: *nodes, WorkersPerNode: *workers,
			Remap: remap, Tracer: tr, Comm: comm,
		})
		obs.Deactivate()
		if err != nil {
			fmt.Fprintf(os.Stderr, "factorization failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("distributed factorization: %v on %d nodes × %d workers (%s)  tasks potrf/trsm/syrk/gemm = %d/%d/%d/%d\n",
			drep.Elapsed.Round(time.Millisecond), *nodes, drep.Cluster.Workers, *distName,
			drep.Potrf, drep.Trsm, drep.Syrk, drep.Gemm)
		if *trim {
			fmt.Printf("trimming analysis: %v\n", drep.Analysis.Round(time.Microsecond))
		}
		fmt.Print(drep.Cluster.Comm.String())
		meas := drep.Cluster.Comm.Totals()
		fmt.Printf("measured comm volume: %d msgs, %.2f MB moved (%.2f MB remap ship)\n",
			meas.MsgsSent, float64(meas.BytesSent)/1e6, float64(meas.ShipBytes)/1e6)
		fmt.Printf("sim prediction (%s): %d msgs, %.2f MB moved (%.2f MB remap ship)\n",
			sim.ShaheenII.Name, pred.Msgs, pred.CommVolume/1e6, pred.ShipVolume/1e6)
		rep.EffFlops, rep.DenseFlops = drep.EffFlops, drep.DenseFlops
		rep.TasksExecuted = drep.Cluster.Executed
		rep.TasksTrimmed = drep.TasksTrimmed
	} else {
		opts := core.Options{
			Tol: *tol, Trim: *trim, Workers: *workers, Sequential: *seq,
			NestedDiag: *nested, CollectTrace: *showTrace && !*seq,
			Tracer: tr, CritPath: (*showTrace || *traceOut != "") && !*seq,
		}
		diagClass := "potrf"
		if ldlt {
			rep, err = core.FactorizeLDLt(m, opts)
			diagClass = "sytrf"
		} else {
			rep, err = core.Factorize(m, opts)
		}
		obs.Deactivate()
		if err != nil {
			fmt.Fprintf(os.Stderr, "factorization failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("factorization: %v  tasks %s/trsm/syrk/gemm = %d/%d/%d/%d\n",
			rep.Elapsed.Round(time.Millisecond), diagClass, rep.Potrf, rep.Trsm, rep.Syrk, rep.Gemm)
		if *trim {
			fmt.Printf("trimming analysis: %v, %.1f KB\n",
				rep.Analysis.Round(time.Microsecond), float64(rep.AnalysisBytes)/1e3)
		}
	}
	// The data-sparsity summary is the paper's headline number; print it
	// on every run, traced or not.
	effPct := 0.0
	if rep.DenseFlops > 0 {
		effPct = 100 * rep.EffFlops / rep.DenseFlops
	}
	fmt.Printf("data sparsity: %d tasks executed, %d trimmed away; effective flops %.3g of dense %.3g (%.1f%%)\n",
		rep.TasksExecuted, rep.TasksTrimmed, rep.EffFlops, rep.DenseFlops, effPct)
	final := m.Stats()
	fmt.Printf("final structure: density=%.3f  ranks max/avg/min = %d/%.1f/%d\n",
		final.Density, final.Max, final.Avg, final.Min)
	m.ObserveRanks(obs.Default.Histogram("tilerank.after", rankBounds...))
	if !*seq && *nodes == 0 {
		obs.Default.Gauge("sched.ready.highwater").Set(int64(rep.Runtime.MaxReady))
	}

	if *showTrace && len(rep.Trace) > 0 {
		fmt.Println(trace.Analyze(rep.Trace).String())
		fmt.Println(trace.Gantt(rep.Trace, 100))
	}
	if rep.CritPath != nil {
		fmt.Print(rep.CritPath.String())
	}
	if *traceOut != "" {
		f, ferr := os.Create(*traceOut)
		if ferr != nil {
			fmt.Fprintf(os.Stderr, "trace-out: %v\n", ferr)
			os.Exit(1)
		}
		meta := map[string]any{
			"n": *n, "b": *b, "tol": *tol, "trim": *trim,
			"workers": rep.Runtime.Workers, "tasks": rep.TasksExecuted,
		}
		events := tr.Events()
		if werr := obs.WriteChromeTrace(f, events, meta); werr != nil {
			fmt.Fprintf(os.Stderr, "trace-out: %v\n", werr)
			os.Exit(1)
		}
		if cerr := f.Close(); cerr != nil {
			fmt.Fprintf(os.Stderr, "trace-out: %v\n", cerr)
			os.Exit(1)
		}
		spans := 0
		for _, e := range events {
			if e.Kind == obs.KindSpan {
				spans++
			}
		}
		fmt.Printf("trace: %d spans (%d events, %d dropped) -> %s\n",
			spans, len(events), tr.Dropped(), *traceOut)
	}
	if *showMetrics {
		fmt.Print(obs.Default.Snapshot().String())
	}
	if *verify {
		if ldlt {
			fmt.Printf("factor error |LDL^T - A|/|A| = %.3e\n", core.FactorErrorLDLt(m, ref))
		} else {
			fmt.Printf("factor error |LL^T - A|/|A| = %.3e\n", core.FactorError(m, ref))
		}
		// Solve a deformation system and report the residual. Under
		// -augmented the constraint rows of b are zero: the right-hand
		// side is pure data, the trailing 4 solution rows are the
		// polynomial coefficients.
		rhs := dense.NewMatrix(dim, 3)
		for i := 0; i < *n; i++ {
			rhs.Set(i, 0, math.Sin(float64(i)))
			rhs.Set(i, 1, 0.5)
			rhs.Set(i, 2, math.Cos(float64(i)))
		}
		x := rhs.Clone()
		core.Solve(m, x)
		fmt.Printf("solve residual |Ax - b|/|b| = %.3e\n", core.ResidualNorm(ref, x, rhs))
	}
	if *solveK > 0 {
		rng := rand.New(rand.NewSource(7))
		rhs := dense.Random(rng, dim, *solveK)
		x := rhs.Clone()
		planStart := time.Now()
		plan := core.BuildSolvePlan(m)
		planT := time.Since(planStart)
		fwdLevels, bwdLevels := plan.Levels()
		fmt.Printf("solve plan: %d tasks, levels %d fwd / %d bwd, max width %d, %.1f KiB, built in %v\n",
			plan.Tasks(), fwdLevels, bwdLevels, plan.MaxWidth(),
			float64(plan.Bytes())/1024, planT.Round(time.Microsecond))
		sStart := time.Now()
		if err := plan.SolveCtx(context.Background(), m, x, 0); err != nil {
			fail("planned solve failed: %v", err)
		}
		solveT := time.Since(sStart)
		res := core.ColumnResiduals(core.TLROperator{M: op}, x, rhs)
		worst := 0.0
		for _, r := range res {
			if r > worst {
				worst = r
			}
		}
		fmt.Printf("blocked solve: %d RHS in %v (%.1f us/column), worst residual |Ax-b|/|b| = %.3e\n",
			*solveK, solveT.Round(time.Microsecond),
			float64(solveT.Microseconds())/float64(*solveK), worst)
	}
}

// Command experiments reproduces every figure of the paper's
// evaluation section (Figs 1, 4–14) and prints the series as text
// tables. Use -scale to shrink the configurations (default 1.0 runs
// the paper-scale simulations; they take a few minutes on one core)
// and -only to select specific figures.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tlrchol/internal/experiments"
)

type tabler interface{ Tables() []experiments.Table }

func main() {
	scale := flag.Float64("scale", 1.0, "scale factor for matrix sizes (0 < scale <= 1)")
	only := flag.String("only", "", "comma-separated figure list, e.g. 1,4,9 (default: all)")
	flag.Parse()
	if *scale <= 0 || *scale > 1 {
		fmt.Fprintln(os.Stderr, "scale must be in (0,1]")
		os.Exit(2)
	}
	selected := map[string]bool{}
	for _, s := range strings.Split(*only, ",") {
		if s = strings.TrimSpace(s); s != "" {
			selected[s] = true
		}
	}
	want := func(id string) bool { return len(selected) == 0 || selected[id] }

	run := func(id, name string, f func() (tabler, error)) {
		if !want(id) {
			return
		}
		start := time.Now()
		r, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			os.Exit(1)
		}
		for _, t := range r.Tables() {
			fmt.Println(t.String())
		}
		fmt.Printf("  [%s computed in %s]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("1", "Fig 1", func() (tabler, error) { return experiments.Fig01(*scale) })
	run("4", "Fig 4", func() (tabler, error) { return experiments.Fig04(*scale), nil })
	run("5", "Fig 5", func() (tabler, error) { return experiments.Fig05(*scale), nil })
	run("6", "Fig 6", func() (tabler, error) { return experiments.Fig06(*scale), nil })
	run("7", "Fig 7", func() (tabler, error) { return experiments.Fig07(*scale), nil })
	run("8", "Fig 8", func() (tabler, error) { return experiments.Fig08(*scale), nil })
	run("9", "Fig 9", func() (tabler, error) { return experiments.Fig09(*scale), nil })
	run("10", "Fig 10", func() (tabler, error) { return experiments.Fig10(*scale), nil })
	run("11", "Fig 11", func() (tabler, error) { return experiments.Fig11(*scale), nil })
	run("12", "Fig 12", func() (tabler, error) { return experiments.Fig12(*scale), nil })
	run("13", "Fig 13", func() (tabler, error) { return experiments.Fig13(*scale), nil })
	run("14", "Fig 14", func() (tabler, error) { return experiments.Fig14(*scale), nil })
	run("ablation", "Ablation", func() (tabler, error) { return experiments.Ablation(*scale), nil })
	run("augmented", "Augmented", func() (tabler, error) { return experiments.Augmented(*scale) })
	run("validation", "Validation", func() (tabler, error) { return experiments.Validation(*scale) })
}

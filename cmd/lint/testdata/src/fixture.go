// Package fixture seeds one instance of every defect class cmd/lint
// detects. It lives under testdata so the go tool never builds or vets
// it; the lint tests parse it directly.
package fixture

import "sync"

// copiesMutex passes a lock by value: the callee locks a copy.
func copiesMutex(mu sync.Mutex) { // want sync-by-value
	mu.Lock()
	defer mu.Unlock()
}

// addsInsideGoroutine races Add against Wait, and captures the loop
// variable in the goroutine.
func addsInsideGoroutine() {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		go func() {
			wg.Add(1) // want add-in-goroutine
			defer wg.Done()
			work(i) // want loop-capture (reported on the go statement)
		}()
	}
	wg.Wait()
}

// leaks launches a goroutine library code never joins.
func leaks() {
	go work(0) // want unjoined-go
}

// joined is clean: Add before the go statement, loop variable
// shadowed, goroutines joined.
func joined() {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			work(i)
		}()
	}
	wg.Wait()
}

func work(int) {}

package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const syncvalFixture = "../../internal/analysis/testdata/src/syncval"

func TestListFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exited %d: %s", code, errOut.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 9 {
		t.Fatalf("-list printed %d analyzers, want 9:\n%s", len(lines), out.String())
	}
	for _, want := range []string{"pairing", "lock-scope", "determinism", "ctx-flow"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list output missing analyzer %q", want)
		}
	}
}

func TestFindingsExitOne(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{syncvalFixture}, &out, &errOut)
	if code != 1 {
		t.Fatalf("fixture run exited %d, want 1: %s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "[sync-by-value]") {
		t.Errorf("output missing [sync-by-value] findings:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "finding(s)") {
		t.Errorf("output missing summary line:\n%s", out.String())
	}
}

func TestLoadErrorExitTwo(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"./no/such/dir"}, &out, &errOut); code != 2 {
		t.Fatalf("bad dir exited %d, want 2", code)
	}
}

func TestRunFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-run", "nonesuch", "."}, &out, &errOut); code != 2 {
		t.Fatalf("-run nonesuch exited %d, want 2", code)
	}
	out.Reset()
	errOut.Reset()
	// determinism has nothing to say about the syncval fixture.
	if code := run([]string{"-run", "determinism", syncvalFixture}, &out, &errOut); code != 0 {
		t.Fatalf("-run determinism on syncval exited %d, want 0: %s%s", code, out.String(), errOut.String())
	}
}

func TestJSONFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-json", syncvalFixture}, &out, &errOut)
	if code != 1 {
		t.Fatalf("-json fixture run exited %d, want 1: %s", code, errOut.String())
	}
	var findings []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out.String())
	}
	if len(findings) == 0 {
		t.Fatal("-json output empty despite exit 1")
	}
	for _, f := range findings {
		if f.Analyzer != "sync-by-value" || f.Line == 0 || f.File == "" {
			t.Errorf("malformed JSON finding: %+v", f)
		}
	}
}

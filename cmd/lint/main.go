// Command lint is the thin CLI over the repo's type-checked invariant
// analysis suite (internal/analysis). Usage:
//
//	go run ./cmd/lint [flags] ./...
//
//	-list            enumerate analyzers and the invariant each guards
//	-run a,b         run only the named analyzers
//	-json            emit findings as a JSON array
//
// Exit codes: 0 clean, 1 findings, 2 the tree failed to load or
// type-check (a build break, not a lint finding) — scripts/check.sh
// gates on 0.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"tlrchol/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("lint", flag.ContinueOnError)
	fs.SetOutput(errOut)
	list := fs.Bool("list", false, "list analyzers and exit")
	runNames := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(out, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *runNames != "" {
		sel, err := analysis.Select(strings.Split(*runNames, ","))
		if err != nil {
			fmt.Fprintf(errOut, "lint: %v\n", err)
			return 2
		}
		analyzers = sel
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := analysis.Run(patterns, analyzers)
	if err != nil {
		fmt.Fprintf(errOut, "lint: %v\n", err)
		return 2
	}
	if *jsonOut {
		if werr := analysis.WriteJSON(out, findings); werr != nil {
			fmt.Fprintf(errOut, "lint: %v\n", werr)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(out, f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(out, "lint: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}

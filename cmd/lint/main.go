// Command lint is the repo's concurrency-hygiene linter (see lint.go
// for the checks). Usage:
//
//	go run ./cmd/lint ./...
//
// It prints one line per finding and exits non-zero if any were found,
// so scripts/check.sh can gate on it.
package main

import (
	"fmt"
	"io"
	"os"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out io.Writer) int {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	files, err := expand(args)
	if err != nil {
		fmt.Fprintf(out, "lint: %v\n", err)
		return 2
	}
	findings, err := lintFiles(files)
	if err != nil {
		fmt.Fprintf(out, "lint: %v\n", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(out, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(out, "lint: %d finding(s) in %d file(s)\n", len(findings), len(files))
		return 1
	}
	return 0
}

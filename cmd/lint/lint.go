package main

// Concurrency-hygiene lint over the repo's own source, stdlib-only
// (go/ast + go/parser, no type checker). It complements `go vet` with
// four checks aimed at the defects a task-parallel runtime codebase is
// most at risk of:
//
//   sync-by-value   a sync.Mutex/RWMutex/WaitGroup/Once/Cond/Map/Pool
//                   passed, received or returned by value — the copy
//                   desynchronizes from the original;
//   add-in-goroutine  sync.WaitGroup.Add called inside the goroutine
//                   it accounts for — Wait can run before Add,
//                   returning early;
//   loop-capture    a goroutine closing over its loop variable without
//                   shadowing it — per-iteration semantics only hold
//                   from Go 1.22, and the idiom stays a portability
//                   hazard;
//   unjoined-go     a goroutine launched from library (non-main)
//                   code whose enclosing function shows no sign of
//                   joining it (no Wait, channel receive or select) —
//                   library code must not leak goroutines it cannot
//                   hand back.
//
// These are AST heuristics, tuned to report zero findings on this
// tree; they prefer false negatives over noise.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

type finding struct {
	pos   token.Position
	check string
	msg   string
}

func (f finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.pos.Filename, f.pos.Line, f.pos.Column, f.check, f.msg)
}

// expand resolves package patterns ("./...", directories, files) into
// the Go source files to lint. Test files, testdata, vendor and hidden
// directories are skipped: the lint targets library and command
// source.
func expand(patterns []string) ([]string, error) {
	var files []string
	add := func(path string) {
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			files = append(files, path)
		}
	}
	for _, p := range patterns {
		if rest, ok := strings.CutSuffix(p, "..."); ok {
			root := filepath.Clean(rest)
			if root == "" {
				root = "."
			}
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if d.IsDir() {
					name := d.Name()
					if path != root && (name == "testdata" || name == "vendor" ||
						strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
						return filepath.SkipDir
					}
					return nil
				}
				add(path)
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		info, err := os.Stat(p)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			add(p)
			continue
		}
		entries, err := os.ReadDir(p)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if !e.IsDir() {
				add(filepath.Join(p, e.Name()))
			}
		}
	}
	sort.Strings(files)
	return files, nil
}

func lintFiles(files []string) ([]finding, error) {
	fset := token.NewFileSet()
	var all []finding
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		all = append(all, lintFile(fset, f)...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		return a.check < b.check
	})
	return all, nil
}

var syncByValueTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Once": true, "Cond": true, "Map": true, "Pool": true,
}

// syncValueType reports the sync.X name if expr is a by-value use of a
// lock-carrying sync type.
func syncValueType(expr ast.Expr) (string, bool) {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || pkg.Name != "sync" || !syncByValueTypes[sel.Sel.Name] {
		return "", false
	}
	return "sync." + sel.Sel.Name, true
}

func lintFile(fset *token.FileSet, f *ast.File) []finding {
	var fs []finding
	report := func(pos token.Pos, check, format string, args ...interface{}) {
		fs = append(fs, finding{pos: fset.Position(pos), check: check, msg: fmt.Sprintf(format, args...)})
	}

	// Pass 1: by-value sync types in any function signature (decls and
	// literals alike).
	checkFieldList := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			if name, ok := syncValueType(field.Type); ok {
				report(field.Pos(), "sync-by-value",
					"%s copies %s by value; use *%s", what, name, name)
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			checkFieldList(fn.Recv, "receiver")
			checkFieldList(fn.Type.Params, "parameter")
			checkFieldList(fn.Type.Results, "result")
		case *ast.FuncLit:
			checkFieldList(fn.Type.Params, "parameter")
			checkFieldList(fn.Type.Results, "result")
		}
		return true
	})

	// Names declared as sync.WaitGroup anywhere in the file (var decls,
	// composite-literal assignments, pointer params): the receivers the
	// add-in-goroutine check watches.
	wgNames := map[string]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.ValueSpec:
			if d.Type != nil {
				if t, ok := stripStar(d.Type).(*ast.SelectorExpr); ok && isSyncSel(t, "WaitGroup") {
					for _, name := range d.Names {
						wgNames[name.Name] = true
					}
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range d.Rhs {
				if i >= len(d.Lhs) {
					break
				}
				if lit, ok := rhs.(*ast.CompositeLit); ok {
					if t, ok := lit.Type.(*ast.SelectorExpr); ok && isSyncSel(t, "WaitGroup") {
						if id, ok := d.Lhs[i].(*ast.Ident); ok {
							wgNames[id.Name] = true
						}
					}
				}
			}
		case *ast.Field:
			if t, ok := stripStar(d.Type).(*ast.SelectorExpr); ok && isSyncSel(t, "WaitGroup") {
				for _, name := range d.Names {
					wgNames[name.Name] = true
				}
			}
		}
		return true
	})

	// Pass 2: WaitGroup.Add inside a go-launched function literal.
	ast.Inspect(f, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := g.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Add" {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); ok && wgNames[id.Name] {
				report(call.Pos(), "add-in-goroutine",
					"%s.Add inside the goroutine it accounts for; call Add before the go statement", id.Name)
			}
			return true
		})
		return true
	})

	// Pass 3: loop-variable capture in go statements.
	ast.Inspect(f, func(n ast.Node) bool {
		var loopVars []string
		var body *ast.BlockStmt
		switch l := n.(type) {
		case *ast.RangeStmt:
			if l.Tok == token.DEFINE {
				for _, e := range []ast.Expr{l.Key, l.Value} {
					if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
						loopVars = append(loopVars, id.Name)
					}
				}
			}
			body = l.Body
		case *ast.ForStmt:
			if init, ok := l.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, e := range init.Lhs {
					if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
						loopVars = append(loopVars, id.Name)
					}
				}
			}
			body = l.Body
		default:
			return true
		}
		if len(loopVars) == 0 || body == nil {
			return true
		}
		// `x := x` (or any re-declare of x) in the loop body shadows the
		// loop variable for the goroutines below it.
		shadowed := map[string]bool{}
		for _, st := range body.List {
			if as, ok := st.(*ast.AssignStmt); ok && as.Tok == token.DEFINE {
				for _, e := range as.Lhs {
					if id, ok := e.(*ast.Ident); ok {
						shadowed[id.Name] = true
					}
				}
			}
		}
		ast.Inspect(body, func(m ast.Node) bool {
			g, ok := m.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			rebound := map[string]bool{}
			for _, p := range lit.Type.Params.List {
				for _, name := range p.Names {
					rebound[name.Name] = true
				}
			}
			ast.Inspect(lit.Body, func(x ast.Node) bool {
				if as, ok := x.(*ast.AssignStmt); ok && as.Tok == token.DEFINE {
					for _, e := range as.Lhs {
						if id, ok := e.(*ast.Ident); ok {
							rebound[id.Name] = true
						}
					}
				}
				return true
			})
			for _, v := range loopVars {
				if shadowed[v] || rebound[v] {
					continue
				}
				if usesIdent(lit.Body, v) {
					report(g.Pos(), "loop-capture",
						"goroutine captures loop variable %q; shadow it (%s := %s) or pass it as an argument", v, v, v)
				}
			}
			return true
		})
		return true
	})

	// Pass 4: unjoined goroutines in library code. main packages own
	// the process lifetime; libraries must join what they spawn.
	if f.Name.Name != "main" {
		ast.Inspect(f, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			joins := functionJoins(fn.Body)
			ast.Inspect(fn.Body, func(m ast.Node) bool {
				if g, ok := m.(*ast.GoStmt); ok && !joins {
					report(g.Pos(), "unjoined-go",
						"library function %s launches a goroutine but never joins (no Wait, channel receive or select)", fn.Name.Name)
				}
				return true
			})
			return true
		})
	}
	return fs
}

func stripStar(e ast.Expr) ast.Expr {
	if s, ok := e.(*ast.StarExpr); ok {
		return s.X
	}
	return e
}

func isSyncSel(sel *ast.SelectorExpr, name string) bool {
	pkg, ok := sel.X.(*ast.Ident)
	return ok && pkg.Name == "sync" && sel.Sel.Name == name
}

func usesIdent(n ast.Node, name string) bool {
	used := false
	ast.Inspect(n, func(m ast.Node) bool {
		if used {
			return false
		}
		if sel, ok := m.(*ast.SelectorExpr); ok {
			// Only the X side of a selector is a variable use.
			ast.Inspect(sel.X, func(x ast.Node) bool {
				if id, ok := x.(*ast.Ident); ok && id.Name == name {
					used = true
				}
				return !used
			})
			return false
		}
		if id, ok := m.(*ast.Ident); ok && id.Name == name {
			used = true
		}
		return !used
	})
	return used
}

// functionJoins reports whether a function body shows any sign of
// waiting for concurrent work: a .Wait() call, a channel receive, or a
// select statement.
func functionJoins(body *ast.BlockStmt) bool {
	joins := false
	ast.Inspect(body, func(n ast.Node) bool {
		if joins {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				joins = true
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				joins = true
			}
		case *ast.SelectStmt:
			joins = true
		}
		return !joins
	})
	return joins
}

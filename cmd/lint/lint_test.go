package main

import (
	"bytes"
	"strings"
	"testing"
)

func fixtureFindings(t *testing.T) []finding {
	t.Helper()
	files, err := expand([]string{"testdata/src"})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("fixture not found")
	}
	fs, err := lintFiles(files)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

// TestLintFixture seeds one defect per check class and demands each is
// flagged — and nothing else.
func TestLintFixture(t *testing.T) {
	fs := fixtureFindings(t)
	byCheck := map[string]int{}
	for _, f := range fs {
		byCheck[f.check]++
		t.Logf("%v", f)
	}
	for _, check := range []string{"sync-by-value", "add-in-goroutine", "loop-capture", "unjoined-go"} {
		if byCheck[check] != 1 {
			t.Errorf("check %s: want exactly 1 finding, got %d", check, byCheck[check])
		}
	}
	if len(fs) != 4 {
		t.Errorf("want 4 findings total (the clean function must stay clean), got %d", len(fs))
	}
}

// TestLintRepoClean walks the real tree: the linter must report
// nothing, which is what scripts/check.sh gates on.
func TestLintRepoClean(t *testing.T) {
	files, err := expand([]string{"../../..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 40 {
		t.Fatalf("suspiciously few files under the repo root: %d", len(files))
	}
	fs, err := lintFiles(files)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		t.Errorf("unexpected finding: %v", f)
	}
}

func TestRunExitCodes(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"testdata/src"}, &out); code != 1 {
		t.Fatalf("fixture run: want exit 1, got %d\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "4 finding(s)") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
	out.Reset()
	if code := run([]string{"main.go"}, &out); code != 0 {
		t.Fatalf("clean run: want exit 0, got %d\n%s", code, out.String())
	}
	out.Reset()
	if code := run([]string{"does-not-exist"}, &out); code != 2 {
		t.Fatalf("bad path: want exit 2, got %d", code)
	}
}

#!/usr/bin/env bash
# bench.sh — the perf-regression harness. Runs the kernel and end-to-end
# benchmarks, snapshots the results into BENCH_<stamp>.json (GFlop/s per
# kernel, Fig04-scale factorization wall-clock, allocs/op), and — when a
# previous snapshot exists — prints a before/after table and fails if any
# tracked metric regressed beyond the threshold (see cmd/benchreport).
#
# Usage:
#   scripts/bench.sh            # snapshot + compare against previous
#   BENCHTIME=2s scripts/bench.sh
#   BENCH_TAG=baseline scripts/bench.sh   # tag the snapshot file name
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"
# The whole suite runs COUNT full passes and benchreport keeps each
# benchmark's fastest sample (best-of-N). Whole-suite passes — rather
# than `go test -count` — space one benchmark's samples minutes apart,
# so a noisy-neighbor slow phase on a shared box cannot poison every
# sample of the benchmarks that happen to run inside it.
COUNT="${BENCH_COUNT:-3}"
PATTERN='^(BenchmarkDense|BenchmarkHCore|BenchmarkRecompress|BenchmarkCompressTile|BenchmarkCompressSVD|BenchmarkCompressARA|BenchmarkFactorizeRBF|BenchmarkFactorizeLDLt|BenchmarkSolveLatency)'
STAMP="$(date -u +%Y%m%dT%H%M%SZ)"
TAG="${BENCH_TAG:+-$BENCH_TAG}"
OUT="BENCH_${STAMP}${TAG}.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "== running benchmarks (benchtime=$BENCHTIME count=$COUNT)"
for pass in $(seq "$COUNT"); do
    echo "-- pass $pass/$COUNT"
    go test -run='^$' -bench="$PATTERN" -benchtime="$BENCHTIME" -timeout=30m .
done | tee "$RAW"

echo "== writing $OUT"
go run ./cmd/benchreport < "$RAW" > "$OUT"

# Compare against the most recent earlier snapshot, if any.
PREV="$(ls BENCH_*.json 2>/dev/null | sort | grep -B1000 -F "$OUT" | grep -v -F "$OUT" | tail -1 || true)"
if [ -n "$PREV" ]; then
    echo "== comparing $PREV -> $OUT"
    go run ./cmd/benchreport -compare "$PREV" "$OUT"
else
    echo "== no previous snapshot; $OUT is the new baseline"
fi

#!/usr/bin/env bash
# check.sh — the repo's single verification gate: build, vet, the
# type-checked static analysis suite (cmd/lint, findings archived as
# JSON), race-detector tests on the concurrency-critical packages (the
# task runtime, the PTG front end, the static verifier's own suite and
# the lint driver itself), then the full test suite, which includes the
# verifier self-checks in internal/verify, and finally a one-iteration
# benchmark smoke run so the perf harness itself cannot bit-rot.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build"
go build ./...

echo "== go vet"
go vet ./...

echo "== static analysis suite (cmd/lint)"
# The tree must be finding-clean under every analyzer; the JSON report
# is archived so a failing run leaves a machine-readable artifact.
# Exit 1 = findings, exit 2 = the tree failed to load or type-check.
lint_json="$(mktemp /tmp/tlrchol-lint.XXXXXX.json)"
trap 'rm -f "$lint_json"' EXIT
go run ./cmd/lint -json ./... > "$lint_json" || {
    echo "check.sh: lint findings (report: $lint_json):" >&2
    cat "$lint_json" >&2
    trap - EXIT
    exit 1
}

echo "== race-detector tests (runtime, ptg, verify, obs, cluster, core, serve, analysis)"
# internal/analysis is in the race list for self-hosting: the lint
# driver runs analyzers concurrently per package, so its own tests must
# hold up under the detector just like the code it audits.
go test -race ./internal/runtime ./internal/ptg ./internal/verify ./internal/obs ./internal/cluster ./internal/core ./internal/serve ./internal/analysis

echo "== full test suite"
go test ./...

echo "== observability smoke gate"
# The tracing-off hot path must stay allocation-free, and a traced run
# must export a valid Chrome trace covering every executed task.
go test -run 'TestDisabledHotPathZeroAlloc' ./internal/obs
go test -run 'TestObsSmoke' .
obs_trace="$(mktemp /tmp/tlrchol-trace.XXXXXX.json)"
trap 'rm -f "$lint_json" "$obs_trace"' EXIT
go run ./cmd/tlrchol -n 1024 -b 128 -verify=false -trace-out "$obs_trace" > /dev/null
grep -q '"traceEvents"' "$obs_trace" || {
    echo "check.sh: trace-out produced no traceEvents" >&2; exit 1; }

echo "== distributed execution gate"
# The virtual cluster must reproduce the shared-memory factor bit for
# bit under every distribution (private node stores enforced by the
# race detector), and a distributed CLI run must print its measured
# comm volume next to the simulator's prediction.
go test -race -run 'TestDistributedMatchesSharedMemory' ./internal/core
dist_out="$(go run ./cmd/tlrchol -n 1024 -b 128 -verify=false -nodes 4 -dist diamond)"
echo "$dist_out" | grep -q 'measured comm volume:' || {
    echo "check.sh: distributed run printed no measured comm volume" >&2; exit 1; }
echo "$dist_out" | grep -q 'sim prediction' || {
    echo "check.sh: distributed run printed no sim prediction" >&2; exit 1; }

echo "== solve scheduler gate"
# The planned parallel substitution must reproduce the sequential bits
# under the race detector, and cancellation mid-sweep must join every
# worker. These are the two properties the whole scheduler rests on.
go test -race -run 'TestSolvePlannedBitwise|TestSolvePlannedCancel' ./internal/core

echo "== solve service smoke gate"
# A real tlrserve on a random port must: factorize once for 8
# concurrent solves against the same problem (single-flight dedup,
# asserted from /metrics), answer /v1/stats, and drain cleanly on
# SIGTERM.
serve_log="$(mktemp /tmp/tlrserve-log.XXXXXX)"
go build -o /tmp/tlrserve-check ./cmd/tlrserve
/tmp/tlrserve-check -addr 127.0.0.1:0 -batch-window 50ms > "$serve_log" 2>&1 &
serve_pid=$!
trap 'rm -f "$lint_json" "$obs_trace" "$serve_log" /tmp/tlrserve-check; kill "$serve_pid" 2>/dev/null || true' EXIT
base=""
for _ in $(seq 50); do
    base="$(sed -n 's|^tlrserve listening on \(http://[0-9.:]*\).*|\1|p' "$serve_log")"
    [ -n "$base" ] && break
    sleep 0.1
done
[ -n "$base" ] || { echo "check.sh: tlrserve did not start"; cat "$serve_log" >&2; exit 1; }
solve_req='{"problem":{"n":512,"tile":64,"tol":1e-7},"nrhs":1,"rhs_seed":SEED}'
pids=()
for i in $(seq 8); do
    curl -sf -o /dev/null -X POST -d "${solve_req/SEED/$i}" "$base/v1/solve" &
    pids+=($!)
done
for p in "${pids[@]}"; do
    wait "$p" || { echo "check.sh: concurrent solve request failed" >&2; exit 1; }
done
runs="$(curl -sf "$base/metrics" | awk '$1 == "serve.factorize.runs" {print $2}')"
[ "$runs" = "1" ] || {
    echo "check.sh: expected exactly 1 factorization for 8 concurrent solves, got '$runs'" >&2; exit 1; }
# The factor must have come with a solve plan: every /v1/solve on it is
# routed through the planned executor, so the plan-build counter moves
# exactly once per factorization.
plans="$(curl -sf "$base/metrics" | awk '$1 == "solve.plan.build" {print $2}')"
[ -n "$plans" ] && [ "$plans" -ge 1 ] || {
    echo "check.sh: expected >=1 solve plan build, got '$plans'" >&2; exit 1; }
curl -sf "$base/v1/stats" | grep -q '"uptime_sec"' || {
    echo "check.sh: /v1/stats did not answer" >&2; exit 1; }
kill -TERM "$serve_pid"
wait "$serve_pid" || { echo "check.sh: tlrserve exited non-zero on SIGTERM" >&2; exit 1; }
grep -q 'drained cleanly' "$serve_log" || {
    echo "check.sh: tlrserve did not drain cleanly" >&2; cat "$serve_log" >&2; exit 1; }

echo "== request tracing gate"
# A traced tlrserve must hand every request a trace id, retain the
# trace in the flight recorder, export it as a valid Chrome trace with
# per-task solve-plan spans, report the latency breakdown in
# /v1/stats, and log one structured JSON line per request. The loadgen
# tail report must name its slowest request's trace.
access_log="$(mktemp /tmp/tlrserve-access.XXXXXX.log)"
trace_json="$(mktemp /tmp/tlrserve-trace.XXXXXX.json)"
trap 'rm -f "$lint_json" "$obs_trace" "$serve_log" "$access_log" "$trace_json" /tmp/tlrserve-check; kill "$serve_pid" 2>/dev/null || true' EXIT
: > "$serve_log"
/tmp/tlrserve-check -addr 127.0.0.1:0 -batch-window 50ms -solve-workers 4 -access-log "$access_log" > "$serve_log" 2>&1 &
serve_pid=$!
base=""
for _ in $(seq 50); do
    base="$(sed -n 's|^tlrserve listening on \(http://[0-9.:]*\).*|\1|p' "$serve_log")"
    [ -n "$base" ] && break
    sleep 0.1
done
[ -n "$base" ] || { echo "check.sh: traced tlrserve did not start"; cat "$serve_log" >&2; exit 1; }
trace_id="$(curl -sf -D - -o /dev/null -X POST -d "${solve_req/SEED/99}" "$base/v1/solve" \
    | tr -d '\r' | awk 'tolower($1) == "x-trace-id:" {print $2}')"
[ -n "$trace_id" ] || { echo "check.sh: solve response carried no X-Trace-Id" >&2; exit 1; }
curl -sf "$base/v1/trace/$trace_id" > "$trace_json" || {
    echo "check.sh: /v1/trace/$trace_id not retrievable" >&2; exit 1; }
grep -q '"traceEvents"' "$trace_json" || {
    echo "check.sh: request trace has no traceEvents" >&2; cat "$trace_json" >&2; exit 1; }
grep -q '"solve.trsm"' "$trace_json" || {
    echo "check.sh: request trace lacks per-task solve-plan spans" >&2; exit 1; }
curl -sf "$base/v1/stats" | grep -q '"queue_ms"' || {
    echo "check.sh: /v1/stats lacks the latency breakdown" >&2; exit 1; }
grep -q "$trace_id" "$access_log" || {
    echo "check.sh: access log has no line for trace $trace_id" >&2; cat "$access_log" >&2; exit 1; }
grep -q '"factor_ms"' "$access_log" || {
    echo "check.sh: access log lines lack the ms breakdown" >&2; exit 1; }
kill -TERM "$serve_pid"
wait "$serve_pid" || { echo "check.sh: traced tlrserve exited non-zero on SIGTERM" >&2; exit 1; }
/tmp/tlrserve-check -loadgen -n 512 -tile 64 -duration 2s -rate 30 -solve-workers 4 > "$serve_log" 2>&1 || {
    echo "check.sh: loadgen run failed" >&2; cat "$serve_log" >&2; exit 1; }
grep -q 'slowest request: trace ' "$serve_log" || {
    echo "check.sh: loadgen did not name its slowest request's trace" >&2; cat "$serve_log" >&2; exit 1; }
grep -q 'valid Chrome/Perfetto trace' "$serve_log" || {
    echo "check.sh: loadgen did not validate the slowest trace" >&2; cat "$serve_log" >&2; exit 1; }

echo "== fleet gate"
# A 3-shard fleet on a random port must run exactly one factorization
# fleet-wide for 8 concurrent solves against the same problem (owner
# routing + per-shard single-flight, asserted by summing the
# shardN.serve.factorize.runs counters from the merged /metrics
# scrape), and /v1/stats must answer with the fleet view (per-shard
# rows + the single-flight rollup). A skewed multi-tenant loadgen
# burst through a 3-shard fleet must then report per-shard load skew
# and fleet-wide router/replication counters.
: > "$serve_log"
/tmp/tlrserve-check -addr 127.0.0.1:0 -shards 3 -batch-window 50ms > "$serve_log" 2>&1 &
serve_pid=$!
base=""
for _ in $(seq 50); do
    base="$(sed -n 's|^tlrserve listening on \(http://[0-9.:]*\).*|\1|p' "$serve_log")"
    [ -n "$base" ] && break
    sleep 0.1
done
[ -n "$base" ] || { echo "check.sh: fleet tlrserve did not start"; cat "$serve_log" >&2; exit 1; }
pids=()
for i in $(seq 8); do
    curl -sf -o /dev/null -X POST -d "${solve_req/SEED/$i}" "$base/v1/solve" &
    pids+=($!)
done
for p in "${pids[@]}"; do
    wait "$p" || { echo "check.sh: concurrent fleet solve request failed" >&2; exit 1; }
done
fleet_runs="$(curl -sf "$base/metrics" | awk '$1 ~ /^shard[0-9]+\.serve\.factorize\.runs$/ {s += $2} END {print s+0}')"
[ "$fleet_runs" = "1" ] || {
    echo "check.sh: expected exactly 1 factorization fleet-wide for 8 concurrent solves, got '$fleet_runs'" >&2; exit 1; }
fleet_stats="$(curl -sf "$base/v1/stats")"
echo "$fleet_stats" | grep -q '"single_flight"' || {
    echo "check.sh: fleet /v1/stats lacks the single_flight rollup" >&2; exit 1; }
echo "$fleet_stats" | grep -q '"shards"' || {
    echo "check.sh: fleet /v1/stats lacks per-shard rows" >&2; exit 1; }
kill -TERM "$serve_pid"
wait "$serve_pid" || { echo "check.sh: fleet tlrserve exited non-zero on SIGTERM" >&2; exit 1; }
/tmp/tlrserve-check -loadgen -shards 3 -problems 8 -zipf 1.4 -factorize-frac 0.05 \
    -n 384 -tile 64 -duration 2s -rate 40 > "$serve_log" 2>&1 || {
    echo "check.sh: fleet loadgen run failed" >&2; cat "$serve_log" >&2; exit 1; }
grep -q 'load skew: hottest shard' "$serve_log" || {
    echo "check.sh: fleet loadgen did not report per-shard load skew" >&2; cat "$serve_log" >&2; exit 1; }
grep -Eq '^  shard [0-9]+' "$serve_log" || {
    echo "check.sh: fleet loadgen did not report per-shard lines" >&2; cat "$serve_log" >&2; exit 1; }
grep -q '^router: ' "$serve_log" || {
    echo "check.sh: fleet loadgen did not report router counters" >&2; cat "$serve_log" >&2; exit 1; }
grep -q '^replication: ' "$serve_log" || {
    echo "check.sh: fleet loadgen did not report replication counters" >&2; cat "$serve_log" >&2; exit 1; }

echo "== indefinite factorization gate"
# The LDLᵀ keystone (factor + planned solve vs the dense reference on a
# saddle-point system Cholesky rejects) must hold under the race
# detector, and a CLI run of the full indefinite pipeline — ARA
# compression, augmented assembly, LDLᵀ factor, solve — must report its
# residual.
go test -race -run 'TestLDLtMatchesDense|TestLDLtPlannedSolveBitwise' ./internal/core
ldlt_out="$(go run ./cmd/tlrchol -n 508 -b 64 -tol 1e-8 -compress ara -factor ldlt -augmented)"
echo "$ldlt_out" | grep -q 'factor error |LDL^T - A|/|A|' || {
    echo "check.sh: ldlt run printed no LDL^T factor error" >&2; exit 1; }
echo "$ldlt_out" | grep -q 'solve residual |Ax - b|/|b|' || {
    echo "check.sh: ldlt run printed no solve residual" >&2; exit 1; }

echo "== benchmark smoke run (1 iteration per benchmark)"
go test -run '^$' -bench=. -benchtime=1x . > /dev/null

echo "check.sh: all gates passed"

#!/usr/bin/env bash
# check.sh — the repo's single verification gate: build, vet, the
# concurrency lint (cmd/lint), race-detector tests on the concurrency-
# critical packages (the task runtime, the PTG front end and the static
# verifier's own suite), then the full test suite, which includes the
# verifier self-checks in internal/verify, and finally a one-iteration
# benchmark smoke run so the perf harness itself cannot bit-rot.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build"
go build ./...

echo "== go vet"
go vet ./...

echo "== concurrency lint (cmd/lint)"
go run ./cmd/lint ./...

echo "== race-detector tests (runtime, ptg, verify, obs, cluster)"
go test -race ./internal/runtime ./internal/ptg ./internal/verify ./internal/obs ./internal/cluster

echo "== full test suite"
go test ./...

echo "== observability smoke gate"
# The tracing-off hot path must stay allocation-free, and a traced run
# must export a valid Chrome trace covering every executed task.
go test -run 'TestDisabledHotPathZeroAlloc' ./internal/obs
go test -run 'TestObsSmoke' .
obs_trace="$(mktemp /tmp/tlrchol-trace.XXXXXX.json)"
trap 'rm -f "$obs_trace"' EXIT
go run ./cmd/tlrchol -n 1024 -b 128 -verify=false -trace-out "$obs_trace" > /dev/null
grep -q '"traceEvents"' "$obs_trace" || {
    echo "check.sh: trace-out produced no traceEvents" >&2; exit 1; }

echo "== distributed execution gate"
# The virtual cluster must reproduce the shared-memory factor bit for
# bit under every distribution (private node stores enforced by the
# race detector), and a distributed CLI run must print its measured
# comm volume next to the simulator's prediction.
go test -race -run 'TestDistributedMatchesSharedMemory' ./internal/core
dist_out="$(go run ./cmd/tlrchol -n 1024 -b 128 -verify=false -nodes 4 -dist diamond)"
echo "$dist_out" | grep -q 'measured comm volume:' || {
    echo "check.sh: distributed run printed no measured comm volume" >&2; exit 1; }
echo "$dist_out" | grep -q 'sim prediction' || {
    echo "check.sh: distributed run printed no sim prediction" >&2; exit 1; }

echo "== benchmark smoke run (1 iteration per benchmark)"
go test -run '^$' -bench=. -benchtime=1x . > /dev/null

echo "check.sh: all gates passed"

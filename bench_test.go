package tlrchol

// One benchmark per figure of the paper's evaluation section (plus the
// Algorithm 1 micro-benchmark). Each benchmark runs its experiment
// driver at a reduced scale and reports the headline metric of the
// figure as custom benchmark outputs, so `go test -bench=.` regenerates
// the whole evaluation. cmd/experiments prints the full tables at
// paper scale.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"tlrchol/internal/core"
	"tlrchol/internal/dense"
	"tlrchol/internal/experiments"
	"tlrchol/internal/ranks"
	"tlrchol/internal/rbf"
	"tlrchol/internal/tilemat"
	"tlrchol/internal/tlr"
	"tlrchol/internal/trim"
)

// benchScale keeps each figure driver in benchmark-friendly territory.
const benchScale = 0.12

func BenchmarkFig01RankDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig01(0.4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Shapes[0].Initial.Density, "density-sparse")
		b.ReportMetric(r.Shapes[1].Initial.Density, "density-dense")
		b.ReportMetric(float64(r.Shapes[1].Final.Max), "max-rank-final")
	}
}

func BenchmarkFig04ShapeParameter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig04(benchScale)
		pts := r.Panels[0].Points
		b.ReportMetric(pts[0].TimeNoTrim/pts[0].TimeTrim, "trim-gain-sparse")
		last := pts[len(pts)-1]
		b.ReportMetric(last.TimeNoTrim/last.TimeTrim, "trim-gain-dense")
	}
}

func BenchmarkFig05TileSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig05(0.25)
		b.ReportMetric(float64(r.Optimum().B), "optimal-tile")
		b.ReportMetric(r.Optimum().Time, "best-time-s")
	}
}

func BenchmarkFig06DAGTrimming(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig06(benchScale)
		var maxGain float64
		for _, p := range r.Points {
			if g := p.TimeFull / p.TimeTrim; g > maxGain {
				maxGain = g
			}
		}
		b.ReportMetric(maxGain, "max-trim-gain")
		b.ReportMetric(r.Overheads[len(r.Overheads)-1].PctOfFactorization, "analysis-pct")
	}
}

func BenchmarkFig07Incremental(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig07(benchScale)
		b.ReportMetric(r.MaxBandSpeedup(), "band-gain")
		b.ReportMetric(r.MaxDiamondSpeedup(), "diamond-gain")
	}
}

func BenchmarkFig08VsLorapoShape(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig08(benchScale)
		var min, max = 1e300, 0.0
		for _, p := range r.Points {
			if p.Speedup < min {
				min = p.Speedup
			}
			if p.Speedup > max {
				max = p.Speedup
			}
		}
		b.ReportMetric(min, "min-speedup")
		b.ReportMetric(max, "max-speedup")
	}
}

func BenchmarkFig09VsLorapoShaheen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig09(benchScale)
		b.ReportMetric(r.MaxSpeedup(), "max-speedup")
	}
}

func BenchmarkFig10VsLorapoFugaku(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig10(benchScale)
		b.ReportMetric(r.MaxSpeedup(), "max-speedup")
	}
}

func BenchmarkFig11TimeBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig11(benchScale)
		last := r.Points[len(r.Points)-1]
		b.ReportMetric(last.Compression/last.FactoOurs, "compr-over-facto-ours")
		b.ReportMetric(last.Compression/last.FactoLorapo, "compr-over-facto-lorapo")
	}
}

func BenchmarkFig12Accuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig12(benchScale)
		first, last := r.Points[0], r.Points[len(r.Points)-1]
		b.ReportMetric(last.Ours/first.Ours, "cost-ratio-1e9-vs-1e5")
	}
}

func BenchmarkFig13Roofline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig13(0.2)
		last := r.Points[len(r.Points)-1]
		b.ReportMetric(last.Efficiency, "efficiency")
		b.ReportMetric(last.NoTrim/last.Diamond, "total-gain")
	}
}

func BenchmarkFig14ExtremeScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig14(0.1)
		f := r.Flagship()
		b.ReportMetric(f.Time/60, "flagship-minutes")
	}
}

func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Ablation(benchScale)
		if !r.AlwaysWins() {
			b.Fatal("headline conclusion flipped")
		}
		b.ReportMetric(r.Rows[0].Speedup, "baseline-speedup")
	}
}

func BenchmarkAlg1Analysis(b *testing.B) {
	model := ranks.FromShape(ranks.PaperGeometry(1_490_000, 4880, 3.7e-4, 1e-4))
	ra := modelRankArray{model}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := trim.Analyze(ra, trim.AllLocal)
		_, _, _, g := trim.TaskCounts(a)
		b.ReportMetric(float64(g), "gemm-tasks")
	}
}

type modelRankArray struct{ m ranks.Model }

func (r modelRankArray) NT() int           { return r.m.NTiles }
func (r modelRankArray) Rank(m, n int) int { return r.m.Rank(m, n) }

// Kernel-level benchmarks: the real numerical workhorses. These are the
// benchmarks scripts/bench.sh snapshots into BENCH_<stamp>.json; keep the
// names stable so cmd/benchreport can compare across snapshots.

func benchTiles(b *testing.B, size, rank int) (*tlr.Tile, *tlr.Tile, *tlr.Tile) {
	rng := rand.New(rand.NewSource(1))
	mk := func() *tlr.Tile {
		return tlr.Compress(dense.RandomLowRank(rng, size, size, rank), 1e-10, 0)
	}
	return mk(), mk(), mk()
}

func BenchmarkHCoreGemmLR(b *testing.B) {
	a, bt, c0 := benchTiles(b, 256, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := c0.Clone()
		tlr.Gemm(a, bt, c, tlr.GemmConfig{Tol: 1e-8})
	}
}

// BenchmarkHCoreGemmSteady measures the steady-state Schur-update path:
// the output tile is recycled run over run, exactly as the factorization
// inner loop does, so allocs/op reflects the warm-workspace regime.
func BenchmarkHCoreGemmSteady(b *testing.B) {
	a, bt, c0 := benchTiles(b, 256, 16)
	c := c0.Clone()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c = tlr.Gemm(a, bt, c, tlr.GemmConfig{Tol: 1e-8})
	}
}

func BenchmarkHCoreSyrk(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	a, _, _ := benchTiles(b, 256, 16)
	c := dense.RandomSPD(rng, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tlr.Syrk(a, c)
	}
}

func BenchmarkCompressTile(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	a := dense.RandomLowRank(rng, 256, 256, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tlr.Compress(a, 1e-8, 0)
	}
}

func BenchmarkRecompress(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	u := dense.Random(rng, 256, 32)
	v := dense.Random(rng, 256, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tlr.Recompress(u, v, 1e-8, 0)
	}
}

// BenchmarkFactorizeRBF is the end-to-end Fig04-scale factorization:
// N=1024 points, tile size 128, trimming on — the wall-clock headline
// the perf-regression harness tracks.
func BenchmarkFactorizeRBF(b *testing.B) {
	pts := rbf.VirusPopulation(rbf.DefaultVirusConfig(1024))[:1024]
	prob, _ := rbf.NewProblem(pts, rbf.Gaussian{Delta: 2 * rbf.DefaultShape(pts), Nugget: 1e-4})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m, _ := tilemat.FromAssembler(1024, 128, prob.Block, 1e-6, 0)
		b.StartTimer()
		if _, err := core.Factorize(m, core.Options{Tol: 1e-6, Trim: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// Dense BLAS-3 / LAPACK kernel benchmarks with GFlop/s reporting.

func benchGemmSize(b *testing.B, n int, tA, tB dense.TransFlag) {
	rng := rand.New(rand.NewSource(5))
	a := dense.Random(rng, n, n)
	bm := dense.Random(rng, n, n)
	c := dense.NewMatrix(n, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dense.Gemm(tA, tB, 1, a, bm, 0, c)
	}
	gflops := 2 * float64(n) * float64(n) * float64(n) * float64(b.N) / b.Elapsed().Seconds() / 1e9
	b.ReportMetric(gflops, "gflops")
}

func BenchmarkDenseGemm64(b *testing.B)    { benchGemmSize(b, 64, dense.NoTrans, dense.NoTrans) }
func BenchmarkDenseGemm256(b *testing.B)   { benchGemmSize(b, 256, dense.NoTrans, dense.NoTrans) }
func BenchmarkDenseGemmNT256(b *testing.B) { benchGemmSize(b, 256, dense.NoTrans, dense.Trans) }
func BenchmarkDenseGemmTN256(b *testing.B) { benchGemmSize(b, 256, dense.Trans, dense.NoTrans) }
func BenchmarkDenseGemmTT256(b *testing.B) { benchGemmSize(b, 256, dense.Trans, dense.Trans) }

func BenchmarkDenseSyrk256(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	n := 256
	a := dense.Random(rng, n, n)
	c := dense.NewMatrix(n, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dense.Syrk(dense.NoTrans, -1, a, 1, c)
	}
	gflops := float64(n) * float64(n+1) * float64(n) * float64(b.N) / b.Elapsed().Seconds() / 1e9
	b.ReportMetric(gflops, "gflops")
}

// BenchmarkDenseTrsm256 exercises the TLR hot combo: panel solve
// A·L⁻ᵀ with the diagonal Cholesky factor (Right/Lower/Trans).
func BenchmarkDenseTrsm256(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	n := 256
	l := dense.RandomSPD(rng, n)
	if err := dense.Potrf(l); err != nil {
		b.Fatal(err)
	}
	x := dense.Random(rng, n, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dense.Trsm(dense.Right, dense.Lower, dense.Trans, dense.NonUnit, 1, l, x)
	}
	gflops := float64(n) * float64(n) * float64(n) * float64(b.N) / b.Elapsed().Seconds() / 1e9
	b.ReportMetric(gflops, "gflops")
}

func BenchmarkDensePotrf512(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	n := 512
	spd := dense.RandomSPD(rng, n)
	work := dense.NewMatrix(n, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work.CopyFrom(spd)
		if err := dense.Potrf(work); err != nil {
			b.Fatal(err)
		}
	}
	gflops := float64(n) * float64(n) * float64(n) / 3 * float64(b.N) / b.Elapsed().Seconds() / 1e9
	b.ReportMetric(gflops, "gflops")
}

func BenchmarkDenseQR256x32(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	a := dense.Random(rng, 256, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dense.QR(a)
	}
}

func BenchmarkDenseQRCP256(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	a := dense.RandomLowRank(rng, 256, 256, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dense.QRCP(a, 1e-8, 0)
	}
}

func BenchmarkDenseSVD64(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	a := dense.Random(rng, 64, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dense.SVD(a)
	}
}

// BenchmarkSolveLatency is the latency headline of the solve scheduler:
// sequential reference substitution vs the planned parallel executor,
// across narrow and blocked right-hand sides on two grid depths. The
// planned path's win scales with GOMAXPROCS (it degenerates to the
// sequential path at 1 worker, so single-CPU runs show parity, not a
// regression); on ≥ 4 CPUs the single-RHS latency drop is the number
// this PR exists for.
func BenchmarkSolveLatency(b *testing.B) {
	grids := []struct{ n, tile int }{
		{2048, 128}, // NT=16
		{4096, 128}, // NT=32
	}
	for _, g := range grids {
		pts := rbf.VirusPopulation(rbf.DefaultVirusConfig(g.n))[:g.n]
		prob, _ := rbf.NewProblem(pts, rbf.Gaussian{Delta: 4 * rbf.DefaultShape(pts), Nugget: 1e-6})
		m, _ := tilemat.FromAssembler(g.n, g.tile, prob.Block, 1e-8, 0)
		if _, err := core.Factorize(m, core.Options{Tol: 1e-8, Trim: true, Sequential: true}); err != nil {
			b.Fatal(err)
		}
		plan := core.BuildSolvePlan(m)
		rng := rand.New(rand.NewSource(21))
		for _, nrhs := range []int{1, 4, 16} {
			rhs := dense.Random(rng, g.n, nrhs)
			x := rhs.Clone()
			name := func(kind string) string {
				return fmt.Sprintf("%s/n=%d/nrhs=%d", kind, g.n, nrhs)
			}
			b.Run(name("Sequential"), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					x.CopyFrom(rhs)
					if err := core.SolveSequentialCtx(context.Background(), m, x); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(name("Planned"), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					x.CopyFrom(rhs)
					if err := plan.SolveCtx(context.Background(), m, x, 0); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// Compressor benchmarks: the deterministic chain vs blocked ARA on the
// same tile column of a real RBF operator. ARA's advantage is that one
// sampling GEMM serves the whole column; the per-block SVD chain pays
// its O(b³) per tile. Both report allocs/op — ARA must stay at zero in
// steady state (the arena high-water mark is reached on the first
// iteration).
func benchCompressorColumn(b *testing.B) []*dense.Matrix {
	b.Helper()
	const n, tile = 1024, 256
	pts := rbf.VirusPopulation(rbf.DefaultVirusConfig(n))[:n]
	prob, _ := rbf.NewProblem(pts, rbf.Gaussian{Delta: 2 * rbf.DefaultShape(pts), Nugget: 1e-4})
	blocks := make([]*dense.Matrix, 0, n/tile-1)
	for i := tile; i < n; i += tile {
		blocks = append(blocks, prob.Block(i, i+tile, 0, tile))
	}
	return blocks
}

func BenchmarkCompressSVD(b *testing.B) {
	blocks := benchCompressorColumn(b)
	out := make([]*tlr.Tile, len(blocks))
	comp := tlr.SVDCompressor{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws := dense.GetWorkspace()
		for j, blk := range blocks {
			out[j] = comp.CompressWS(blk, 1e-6, 0, ws)
		}
		ws.Release()
	}
}

func BenchmarkCompressARA(b *testing.B) {
	blocks := benchCompressorColumn(b)
	out := make([]*tlr.Tile, len(blocks))
	comp := tlr.ARACompressor{Seed: 42}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws := dense.GetWorkspace()
		comp.CompressColumnWS(0, blocks, 1e-6, 0, ws, out)
		ws.Release()
	}
}

// BenchmarkFactorizeLDLt mirrors BenchmarkFactorizeRBF with the signed
// factorization on the same SPD operator, so the snapshot tracks the
// overhead of the D-weighted task kernels against plain Cholesky.
func BenchmarkFactorizeLDLt(b *testing.B) {
	pts := rbf.VirusPopulation(rbf.DefaultVirusConfig(1024))[:1024]
	prob, _ := rbf.NewProblem(pts, rbf.Gaussian{Delta: 2 * rbf.DefaultShape(pts), Nugget: 1e-4})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m, _ := tilemat.FromAssembler(1024, 128, prob.Block, 1e-6, 0)
		b.StartTimer()
		if _, err := core.FactorizeLDLt(m, core.Options{Tol: 1e-6, Trim: true}); err != nil {
			b.Fatal(err)
		}
	}
}

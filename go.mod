module tlrchol

go 1.22
